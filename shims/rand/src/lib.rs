//! In-repo stand-in for [rand 0.8](https://docs.rs/rand/0.8) (no
//! crates.io access in the build container — see `shims/README.md`).
//!
//! Implements the slice of the API this workspace uses: [`SeedableRng`]
//! `::seed_from_u64`, [`Rng`] `::gen` / `::gen_range`, and
//! [`seq::SliceRandom`] `::shuffle`. [`rngs::StdRng`] is xoshiro256++
//! seeded through splitmix64 — high-quality and deterministic per seed,
//! though its exact output stream differs from the real crate's
//! ChaCha12-based `StdRng` (nothing in the workspace depends on the
//! specific stream, only on per-seed determinism).

/// Core RNG interface: raw random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sampling (rejection on
                // the low word product).
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                if s == <$t>::MIN && e == <$t>::MAX {
                    return Standard::sample(rng);
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        let mut m = (rng.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                m = (rng.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        self.start + (m >> 64) as u64
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (s, e) = (*self.start(), *self.end());
        if s == u64::MIN && e == u64::MAX {
            return Standard::sample(rng);
        }
        (s..e + 1).sample_from(rng)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, matching `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators, matching `rand::rngs`.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, matching `rand::seq`.
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling, matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
