//! In-repo stand-in for [parking_lot](https://docs.rs/parking_lot)
//! (no crates.io access in the build container — see
//! `shims/README.md`).
//!
//! Wraps the std locks behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, recovering from poisoning (parking_lot
//! has no poisoning; a panicked critical section leaves the protected
//! data in whatever state it reached, which is also parking_lot's
//! contract).

use std::sync::TryLockError;

/// Mutual exclusion, matching `parking_lot::Mutex`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// Reader–writer lock, matching `parking_lot::RwLock`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
