//! In-repo stand-in for [proptest](https://docs.rs/proptest) (no
//! crates.io access in the build container — see `shims/README.md`).
//!
//! Implements the surface the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`Strategy`](strategy::Strategy) with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`collection::vec`], [`any`], [`prop_oneof!`] and the
//! `prop_assert*` macros. Cases are generated from a fixed seed (plus
//! the case index), so runs are deterministic; there is **no
//! shrinking** — a failing case panics with the raw inputs via the
//! standard assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::*;

    /// A generator of random values, matching `proptest::strategy::Strategy`
    /// in spirit (no shrink trees — `Value` is the output type directly).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                base: self,
                f,
                whence,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Type-erased strategy, cheap to clone (used by [`prop_oneof!`]).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`]; resamples until the
    /// predicate accepts (bounded, then panics).
    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 samples in a row: {}",
                self.whence
            );
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        pub(crate) arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical "any value" strategy ([`crate::any`]).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for an integer type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $sample:expr),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    #[allow(clippy::redundant_closure_call)]
                    ($sample)(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int! {
        u8 => |rng: &mut StdRng| rng.gen::<u32>() as u8,
        u16 => |rng: &mut StdRng| rng.gen::<u32>() as u16,
        u32 => |rng: &mut StdRng| rng.gen::<u32>(),
        u64 => |rng: &mut StdRng| rng.gen::<u64>(),
        usize => |rng: &mut StdRng| rng.gen::<u64>() as usize,
        bool => |rng: &mut StdRng| rng.gen::<bool>()
    }
}

/// The canonical strategy for `T` — `any::<u32>()` etc.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length specification for [`vec()`]: a fixed count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs `cases` sampled executions of `body`. Used by the [`proptest!`]
/// expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases(cases: u32, test_path: &str, mut body: impl FnMut(&mut StdRng)) {
    // Deterministic per test function: hash the path into the seed.
    let mut seed = 0xA5F3_9EED_u64;
    for b in test_path.bytes() {
        seed = seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(u64::from(b));
    }
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(case) << 32));
        body(&mut rng);
    }
}

/// Mirrors proptest's `proptest! { … }` test-family macro.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), __rng); )+
                    $body
                });
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform random choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 0u64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths(mut xs in crate::collection::vec(0u32..100, 3..7)) {
            xs.sort_unstable();
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
        }

        #[test]
        fn tuples_and_oneof(
            (a, b) in (0u32..10, 0u64..10),
            c in prop_oneof![Just(1u32), 5u32..8],
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(c == 1 || (5..8).contains(&c));
        }

        #[test]
        fn any_compiles(v in crate::any::<u32>()) {
            let _ = v;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases(5, "det", |rng| {
            first.push(crate::strategy::Strategy::sample(&(0u32..1000), rng))
        });
        let mut second = Vec::new();
        crate::run_cases(5, "det", |rng| {
            second.push(crate::strategy::Strategy::sample(&(0u32..1000), rng))
        });
        assert_eq!(first, second);
    }
}
