//! In-repo stand-in for [criterion](https://docs.rs/criterion) (no
//! crates.io access in the build container — see `shims/README.md`).
//!
//! Supports the macro/builder surface the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_with_input`,
//! `BenchmarkId`, `Throughput` and `Bencher::iter`. Measurement is a
//! simple calibrated wall-clock loop printing mean time per iteration —
//! no statistics, plots or regression detection.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported so benches can use
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Runs closures under a timing loop; handed to bench bodies.
pub struct Bencher {
    /// Mean seconds per iteration measured by the last [`iter`](Self::iter).
    measured: Option<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `f`: a calibration pass sizes the batch, then the batch is
    /// timed and the mean per-iteration cost recorded.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibration: find an iteration count filling ~the budget.
        let probe = Instant::now();
        std_black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.measured = Some(start.elapsed().as_secs_f64() / iters as f64);
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(
    label: &str,
    budget: Duration,
    throughput: Option<&Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measured: None,
        budget,
    };
    f(&mut b);
    let mut line = format!("bench: {label:<48}");
    match b.measured {
        Some(secs) => {
            let _ = write!(line, " {:>12}/iter", fmt_time(secs));
            if let Some(Throughput::Elements(n)) = throughput {
                let _ = write!(line, "  ({:.2} Melem/s)", *n as f64 / secs / 1e6);
            }
        }
        None => line.push_str(" (no measurement)"),
    }
    println!("{line}");
}

/// Identifies a parameterized benchmark, matching `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Work-per-iteration declaration, matching `criterion::Throughput`.
#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level bench context, matching `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.budget, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.budget = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoLabel,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.budget, self.throughput.as_ref(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.budget, self.throughput.as_ref(), |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s as bench labels.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Declares a bench group: `criterion_group!(benches, f1, f2, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group1, group2)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .throughput(Throughput::Elements(100))
            .bench_with_input(BenchmarkId::from_parameter(42), &42u32, |b, &x| {
                b.iter(|| x * 2)
            });
        g.finish();
    }
}
