//! The work-stealing fork-join runtime behind [`join`], [`scope`] and
//! the parallel iterators.
//!
//! Structure (a deliberately small rayon-core):
//!
//! * a [`Registry`] owns one **lock-free Chase–Lev deque**
//!   ([`crate::deque`]) per worker plus a global injector queue for
//!   jobs arriving from non-pool threads;
//! * workers pop their own deque LIFO (cache-hot, depth-first) and
//!   steal FIFO from victims (breadth-first, big pieces first) — the
//!   classic work-stealing discipline;
//! * [`join`] pushes the second closure as a [`StackJob`] on the local
//!   deque, runs the first inline, then pops its deque back down: if
//!   nobody stole the job it comes back and runs inline — on the
//!   Chase–Lev owner path that round trip is a handful of relaxed
//!   atomics and two fences, **no lock and no CAS** — otherwise the
//!   worker *helps* (keeps executing other jobs) until the thief
//!   finishes;
//! * latches separate a cheap atomic probe (used by helping workers)
//!   from a condvar wait (used by non-pool threads); the condvar path
//!   is armed only when a waiter registers, so setting a latch nobody
//!   blocks on is a single release store;
//! * blocked non-pool threads wait on the condvar, blocked workers
//!   help, so the pool can never deadlock on nested parallelism;
//! * panics inside jobs are captured and re-thrown at the join point,
//!   matching rayon's semantics.
//!
//! `docs/RUNTIME.md` at the repository root documents the full deque
//! protocol, the memory orderings, and the measured per-fork cost the
//! workspace's grain thresholds are tuned against.

use crate::deque::{Deque, Steal};
use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Runtime metrics
// ---------------------------------------------------------------------------

/// Local-deque depth is sampled on every `DEPTH_SAMPLE_MASK + 1`-th
/// fork rather than every fork: the depth read walks the deque's
/// `bottom`/`top` pair, and sampling keeps the per-fork overhead to a
/// single relaxed increment plus a branch.
const DEPTH_SAMPLE_MASK: u64 = 63;

/// Always-on per-worker scheduler counters, one cache line per worker
/// so the relaxed increments on the fork/steal hot paths never
/// false-share. Written only by scheduler code; read (racily, which is
/// fine for monitoring) by [`Registry::runtime_stats`].
#[repr(align(128))]
#[derive(Default)]
struct WorkerMetrics {
    /// Type-erased jobs executed on this worker (stolen `join` halves,
    /// scope spawns, injected roots) — the un-stolen `join` fast path
    /// runs inline and is *not* a job execution.
    jobs: AtomicU64,
    /// Jobs pushed onto this worker's own deque (`join` forks and
    /// worker-side scope spawns).
    forks: AtomicU64,
    /// Successful steals *by* this worker (victim attribution would
    /// need a cross-thread write on the victim's line).
    steals: AtomicU64,
    /// Steal attempts that hit CAS contention ([`Steal::Retry`]).
    steal_retries: AtomicU64,
    /// Adaptive-splitter budget resets observed on this worker — each
    /// one is a task that detected it was stolen (`crate::iter`).
    splitter_resets: AtomicU64,
    /// Times this worker went to sleep on the idle condvar.
    sleeps: AtomicU64,
    depth_sum: AtomicU64,
    depth_samples: AtomicU64,
    depth_max: AtomicU64,
}

impl WorkerMetrics {
    fn sample_depth(&self, depth: u64) {
        self.depth_sum.fetch_add(depth, Ordering::Relaxed);
        self.depth_samples.fetch_add(1, Ordering::Relaxed);
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one worker's scheduler counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerRuntimeStats {
    pub jobs: u64,
    pub forks: u64,
    pub steals: u64,
    pub steal_retries: u64,
    pub splitter_resets: u64,
    pub sleeps: u64,
    /// Number of deque-depth samples behind [`depth_mean`](Self::depth_mean)
    /// (one sample per 64 forks).
    pub depth_samples: u64,
    pub depth_mean: f64,
    pub depth_max: u64,
}

impl WorkerRuntimeStats {
    fn read(m: &WorkerMetrics) -> WorkerRuntimeStats {
        let depth_sum = m.depth_sum.load(Ordering::Relaxed);
        let depth_samples = m.depth_samples.load(Ordering::Relaxed);
        WorkerRuntimeStats {
            jobs: m.jobs.load(Ordering::Relaxed),
            forks: m.forks.load(Ordering::Relaxed),
            steals: m.steals.load(Ordering::Relaxed),
            steal_retries: m.steal_retries.load(Ordering::Relaxed),
            splitter_resets: m.splitter_resets.load(Ordering::Relaxed),
            sleeps: m.sleeps.load(Ordering::Relaxed),
            depth_samples,
            depth_mean: if depth_samples == 0 {
                0.0
            } else {
                depth_sum as f64 / depth_samples as f64
            },
            depth_max: m.depth_max.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of a pool's scheduler counters: one row per worker plus
/// the pool-wide injector/wakeup counts. Obtained from
/// [`ThreadPool::runtime_stats`] or [`current_runtime_stats`]; values
/// are cumulative since pool creation, so rates come from differencing
/// two snapshots.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    pub workers: Vec<WorkerRuntimeStats>,
    /// Jobs submitted through the external injector queue (roots of
    /// `join`/`scope` calls made from non-pool threads).
    pub injected: u64,
    /// Times a submission found sleepers and rang the idle condvar.
    pub wakes: u64,
}

impl RuntimeStats {
    /// Sums the per-worker rows (depth mean weighted by sample count).
    pub fn totals(&self) -> WorkerRuntimeStats {
        let mut t = WorkerRuntimeStats::default();
        let mut depth_sum = 0.0;
        for w in &self.workers {
            t.jobs += w.jobs;
            t.forks += w.forks;
            t.steals += w.steals;
            t.steal_retries += w.steal_retries;
            t.splitter_resets += w.splitter_resets;
            t.sleeps += w.sleeps;
            t.depth_samples += w.depth_samples;
            depth_sum += w.depth_mean * w.depth_samples as f64;
            t.depth_max = t.depth_max.max(w.depth_max);
        }
        if t.depth_samples > 0 {
            t.depth_mean = depth_sum / t.depth_samples as f64;
        }
        t
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>8} {:>8} {:>7} {:>7} {:>10} {:>9}",
            "worker",
            "jobs",
            "forks",
            "steals",
            "retries",
            "resets",
            "sleeps",
            "depth-avg",
            "depth-max"
        )?;
        let mut row = |label: &str, w: &WorkerRuntimeStats| {
            writeln!(
                f,
                "{:>6} {:>10} {:>10} {:>8} {:>8} {:>7} {:>7} {:>10.2} {:>9}",
                label,
                w.jobs,
                w.forks,
                w.steals,
                w.steal_retries,
                w.splitter_resets,
                w.sleeps,
                w.depth_mean,
                w.depth_max
            )
        };
        for (i, w) in self.workers.iter().enumerate() {
            row(&i.to_string(), w)?;
        }
        row("total", &self.totals())?;
        write!(f, "injected: {}   wakes: {}", self.injected, self.wakes)
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job awaiting execution. The pointee is
/// either a [`StackJob`] on some joiner's stack (kept alive until its
/// latch is set) or a leaked [`HeapJob`] (freed by `execute`).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: a JobRef only crosses threads under the queue protocol — the
// pointee outlives execution (stack jobs by latch discipline, heap jobs
// by ownership transfer) and the closures inside are `Send`.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// The pointee must still be alive and not yet executed.
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }

    /// Identity comparison: two refs to the same job.
    pub(crate) fn same_job(self, other: JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }

    /// Decomposes into two plain words for storage in the deque's
    /// atomic slots.
    pub(crate) fn into_words(self) -> (usize, usize) {
        (self.data as usize, self.exec as usize)
    }

    /// Recomposes from [`into_words`](Self::into_words) output.
    ///
    /// # Safety
    ///
    /// The words must have come from `into_words` on a live job — the
    /// deque protocol guarantees this for every value it *certifies*
    /// (speculatively read values whose CAS failed are discarded
    /// without being recomposed into anything callable).
    pub(crate) unsafe fn from_words(data: usize, exec: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            exec: std::mem::transmute::<usize, unsafe fn(*const ())>(exec),
        }
    }

    /// A dummy job carrying `tag` in its data word; never executable.
    /// Used by the deque race tests, which only account claims.
    #[cfg(test)]
    pub(crate) fn tagged_for_test(tag: usize) -> JobRef {
        unsafe fn never(_: *const ()) {
            unreachable!("test job executed");
        }
        JobRef {
            data: tag as *const (),
            exec: never,
        }
    }
}

/// A completion flag with both a cheap probe (for helping workers) and
/// a blocking wait (for non-pool threads).
///
/// The condvar machinery is armed lazily: `wait()` registers itself in
/// `waiters` before its final re-check, and `set()` only takes the
/// lock when it observes a registered waiter. The common case — a
/// stolen `join` job completing while the joiner *helps* (probing, not
/// blocking) — therefore sets the latch with one release store and one
/// SeqCst load, no lock. The SeqCst pair (`waiters` increment before
/// the waiter's `done` re-check; `done` store before the setter's
/// `waiters` load) is a Dekker handshake: either the waiter sees
/// `done` and never sleeps, or the setter sees the waiter and takes
/// the lock to notify — and the notification can't be lost because the
/// waiter re-checks `done` under the same lock it sleeps on.
///
/// Always handled through an [`Arc`]: the job's final `set()` operates
/// on a clone taken *before* touching the flag, so the joiner may free
/// the job (and its embedded latch handle) the instant `probe()`
/// succeeds without racing the setter's condvar notification.
pub(crate) struct LatchInner {
    done: AtomicBool,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

pub(crate) type Latch = Arc<LatchInner>;

pub(crate) fn new_latch() -> Latch {
    Arc::new(LatchInner {
        done: AtomicBool::new(false),
        waiters: AtomicUsize::new(0),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    })
}

impl LatchInner {
    fn set(&self) {
        self.done.store(true, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn wait(&self) {
        if self.probe() {
            return;
        }
        self.waiters.fetch_add(1, Ordering::SeqCst);
        {
            let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            while !self.done.load(Ordering::SeqCst) {
                g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A job living on the joiner's stack frame: the closure, a slot for
/// its result (or captured panic), and its completion signals.
///
/// Completion has a two-tier design so the per-`join` cost stays
/// allocation-free on the hot path:
///
/// * `done` is an **inline** flag. Worker joiners *help* while they
///   wait, so they only ever probe; the executing thief's final touch
///   of this frame is the release store to `done`, after which the
///   joiner may pop its stack frame at any instant.
/// * `blocking` is an **optional heap latch**, armed only by
///   [`join_external`] (non-pool joiners can't help; they must block
///   on a condvar). It is an `Arc` because the setter still needs it
///   after its last frame touch: it clones the handle out of the
///   frame *first*, stores `done`, then signals the clone.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
    blocking: Option<Latch>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// A job joined by a pool worker: probe-only completion, no
    /// allocation.
    fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            blocking: None,
        }
    }

    /// A job joined by a non-pool thread: arms the condvar latch.
    fn new_blocking(f: F) -> Self {
        StackJob {
            blocking: Some(new_latch()),
            ..Self::new(f)
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// # Safety
    ///
    /// The returned ref must not outlive `self`, and `self` must stay
    /// alive until completion is signalled (the join protocol
    /// guarantees it).
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(result);
        match this.blocking.clone() {
            // Worker joiner: the release store is the last touch of
            // the (possibly about-to-be-freed) frame.
            None => this.done.store(true, Ordering::Release),
            // External joiner: it watches only the heap latch, so the
            // frame touches (done, then the Arc read above) all happen
            // before the signal that frees the frame.
            Some(latch) => {
                this.done.store(true, Ordering::Release);
                latch.set();
            }
        }
    }

    /// Runs the closure on the current thread after the job was popped
    /// back un-stolen.
    fn run_popped(self) -> R {
        let f = self.f.into_inner().expect("popped job already executed");
        f()
    }

    /// Retrieves the result once completion has been observed.
    fn into_result(self) -> R {
        match self.result.into_inner().expect("completion without result") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by [`Scope::spawn`]);
/// freed by its own execution.
struct HeapJob {
    f: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    fn job_ref(f: Box<dyn FnOnce() + Send>) -> JobRef {
        JobRef {
            data: Box::into_raw(Box::new(HeapJob { f })) as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job = Box::from_raw(ptr as *mut HeapJob);
        // The boxed closure does its own panic capture (scope protocol).
        (job.f)();
    }
}

// ---------------------------------------------------------------------------
// Registry (one per pool)
// ---------------------------------------------------------------------------

/// Shared state of one thread pool: the workers' lock-free Chase–Lev
/// deques, the injector queue for external submissions, and the sleep
/// machinery.
///
/// The injector stays a mutex-guarded `VecDeque`: it only carries jobs
/// from *non-pool* threads (one per external `join`/`scope` root, e.g.
/// a stream writer's batch apply), so it is off every per-fork hot
/// path — and external joins need its reclaim-by-identity operation
/// ([`pop_injected_if`](Self::pop_injected_if)), which a Chase–Lev
/// deque cannot express.
pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    terminate: AtomicBool,
    next_victim: AtomicUsize,
    /// One padded counter block per worker (indexed like `deques`).
    metrics: Vec<WorkerMetrics>,
    injected: AtomicU64,
    wakes: AtomicU64,
}

/// Above this many pending jobs in a worker's local deque, `join` runs
/// both closures inline: enough parallelism is already exposed, and
/// queuing more fine-grained tasks would only pay deque traffic.
const LOCAL_PENDING_LIMIT: usize = 32;

impl Registry {
    /// Builds a registry and spawns its `n` worker threads.
    fn spawn(n: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Deque::default()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            terminate: AtomicBool::new(false),
            next_victim: AtomicUsize::new(0),
            metrics: (0..n).map(|_| WorkerMetrics::default()).collect(),
            injected: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        });
        let handles = (0..n)
            .map(|index| {
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name(format!("aspen-worker-{index}"))
                    .stack_size(8 << 20) // recursive tree ops fork deep
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Pushes onto worker `index`'s deque. **Must only be called from
    /// that worker's own thread** (Chase–Lev owner discipline); both
    /// call sites — `join_on_worker` and `Scope::spawn` on a worker —
    /// run on the owning thread by construction.
    fn push_local(&self, index: usize, job: JobRef) {
        let m = &self.metrics[index];
        let forks = m.forks.fetch_add(1, Ordering::Relaxed);
        self.deques[index].push(job);
        if forks & DEPTH_SAMPLE_MASK == 0 {
            m.sample_depth(self.deques[index].len() as u64);
        }
        self.notify();
    }

    /// Pops worker `index`'s own deque (LIFO). **Owner thread only.**
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].pop()
    }

    fn inject(&self, job: JobRef) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.notify();
    }

    fn notify(&self) {
        // Dekker fence against `sleep`: order the (relaxed) deque
        // publish before the sleepers read, mirroring the fence between
        // the sleeper's registration and its queue re-check. One of the
        // two sides always sees the other.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.wakes.fetch_add(1, Ordering::Relaxed);
            let _g = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleep_cv.notify_all();
        }
    }

    fn local_pending(&self, index: usize) -> usize {
        self.deques[index].len()
    }

    /// Removes `job` from the injector if no worker claimed it yet.
    fn pop_injected_if(&self, job: JobRef) -> bool {
        let mut q = self.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.data, job.data)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// One round of the work-finding protocol: own deque (LIFO), then
    /// the injector, then steal from victims round-robin (FIFO). A
    /// victim whose steal hit CAS contention ([`Steal::Retry`]) is
    /// re-swept a bounded number of times: contention proves work
    /// existed moments ago, but unbounded re-sweeping would let
    /// thieves monopolize timeshared cores (the caller's spin/yield —
    /// or sleep — loop is the right place to back off).
    fn find_work(&self, index: Option<usize>) -> Option<JobRef> {
        if let Some(i) = index {
            if let Some(job) = self.pop_local(i) {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(job);
        }
        let n = self.deques.len();
        let start = self.next_victim.fetch_add(1, Ordering::Relaxed);
        for _sweep in 0..3 {
            let mut contended = false;
            for k in 0..n {
                let v = (start + k) % n;
                if Some(v) == index {
                    continue;
                }
                match self.deques[v].steal() {
                    Steal::Success(job) => {
                        if let Some(i) = index {
                            self.metrics[i].steals.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(job);
                    }
                    Steal::Retry => {
                        if let Some(i) = index {
                            self.metrics[i]
                                .steal_retries
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        contended = true;
                    }
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::hint::spin_loop();
        }
        None
    }

    fn has_pending(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
        {
            return true;
        }
        self.deques.iter().any(|d| !d.is_empty())
    }

    /// Parks an idle worker without missed wakeups: the worker
    /// registers in `sleepers` *before* its final queue re-check
    /// (separated by a SeqCst fence pairing with the one in
    /// [`notify`](Self::notify)), so a concurrent pusher either reads
    /// `sleepers > 0` — and must take `sleep_lock` to notify, which it
    /// cannot hold until the worker has reached `wait_timeout` and
    /// released it — or its deque publish is fence-ordered before the
    /// re-check and gets seen there.
    fn sleep(&self, index: usize) {
        let g = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.terminate.load(Ordering::Acquire) {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.has_pending() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.metrics[index].sleeps.fetch_add(1, Ordering::Relaxed);
        let _woken = match self.sleep_cv.wait_timeout(g, Duration::from_millis(100)) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Cooperative wait for worker threads: keep executing other jobs
    /// until `probe` reports completion. This is what makes nested
    /// fork-join deadlock-free — a blocked worker is never idle while
    /// work exists.
    fn wait_until(&self, index: usize, probe: impl Fn() -> bool) {
        let mut idle_spins = 0u32;
        while !probe() {
            if let Some(job) = self.find_work(Some(index)) {
                unsafe { self.execute_job(index, job) };
                idle_spins = 0;
            } else if idle_spins < 64 {
                std::hint::spin_loop();
                idle_spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Runs a claimed job on worker `index`, counting it and (under
    /// the `obs-trace` feature) recording a task span. Every pool-side
    /// `JobRef::execute` goes through here; the span call is a
    /// zero-sized no-op when the feature is off and a single relaxed
    /// load when it is compiled in but tracing is not enabled.
    ///
    /// # Safety
    ///
    /// Same contract as [`JobRef::execute`].
    unsafe fn execute_job(&self, index: usize, job: JobRef) {
        self.metrics[index].jobs.fetch_add(1, Ordering::Relaxed);
        let _span = obs::trace::span_cat("job", "runtime");
        job.execute();
    }

    /// Point-in-time copy of the pool's scheduler counters.
    fn runtime_stats(&self) -> RuntimeStats {
        RuntimeStats {
            workers: self.metrics.iter().map(WorkerRuntimeStats::read).collect(),
            injected: self.injected.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.set(Some(WorkerHandle {
        registry: Arc::as_ptr(&registry),
        index,
    }));
    WORKER_REGISTRY.with(|r| *r.borrow_mut() = Some(registry.clone()));
    while !registry.terminate.load(Ordering::Acquire) {
        match registry.find_work(Some(index)) {
            // Job execution never unwinds: panics are captured inside.
            Some(job) => unsafe { registry.execute_job(index, job) },
            None => registry.sleep(index),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local pool context
// ---------------------------------------------------------------------------

/// Hot-path identity of a pool worker (raw pointer: the worker's own
/// `Arc` in `worker_main` keeps the registry alive for its lifetime).
#[derive(Clone, Copy)]
struct WorkerHandle {
    registry: *const Registry,
    index: usize,
}

thread_local! {
    static WORKER: Cell<Option<WorkerHandle>> = const { Cell::new(None) };
    static WORKER_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Stack of [`ThreadPool::install`] scopes on non-worker threads.
    static INSTALLED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<(Arc<Registry>, Vec<std::thread::JoinHandle<()>>)> = OnceLock::new();

/// The process-wide default registry, sized by the `ASPEN_THREADS`
/// environment variable when set (and positive), otherwise by
/// [`std::thread::available_parallelism`].
fn global_registry() -> &'static Arc<Registry> {
    let (registry, _handles) = GLOBAL.get_or_init(|| {
        let n = std::env::var("ASPEN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Registry::spawn(n)
    });
    registry
}

/// The registry the current thread's parallel work routes to: the
/// worker's own pool when on a pool thread, else the innermost
/// [`ThreadPool::install`], else the global pool.
///
/// Because spawned/stolen jobs execute *on pool worker threads*, code
/// inside them always resolves to the pool that runs it — this is how
/// pool context propagates into nested parallel work (the former
/// thread-local-only scheme lost it across thread boundaries).
fn current_registry() -> Arc<Registry> {
    if let Some(reg) = WORKER_REGISTRY.with(|r| r.borrow().clone()) {
        return reg;
    }
    if let Some(reg) = INSTALLED.with(|s| s.borrow().last().cloned()) {
        return reg;
    }
    global_registry().clone()
}

/// The number of worker threads parallel work on this thread will use.
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Scheduler counters of the pool the current thread's parallel work
/// routes to (the worker's own pool on a pool thread, else the
/// innermost [`ThreadPool::install`], else the global pool).
pub fn current_runtime_stats() -> RuntimeStats {
    current_registry().runtime_stats()
}

/// Called by the adaptive splitter (`crate::iter`) when a task detects
/// it was stolen and re-arms its split budget. Attributed to the
/// worker the reset happened *on* (the thief); a no-op off-pool.
pub(crate) fn note_splitter_reset() {
    if let Some(w) = WORKER.get() {
        let registry = unsafe { &*w.registry };
        registry.metrics[w.index]
            .splitter_resets
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Cheap identity of the current execution context: `(registry, worker
/// index)` on a pool worker, a unique per-thread tag elsewhere. The
/// adaptive splitter ([`crate::iter`]'s split-on-steal) compares the
/// marker a task was created under with the marker it runs under — a
/// difference proves the task crossed threads, i.e. was stolen.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThreadMarker(usize, usize);

/// The current thread's [`ThreadMarker`]. Two TLS reads, no
/// allocation — cheap enough to call once per splitter decision.
pub fn thread_marker() -> ThreadMarker {
    if let Some(w) = WORKER.get() {
        return ThreadMarker(w.registry as usize, w.index);
    }
    thread_local! {
        static THREAD_TAG: u8 = const { 0 };
    }
    // Non-pool thread: a TLS slot's address is unique per live thread,
    // and 0 in the first word can never collide with a registry.
    ThreadMarker(0, THREAD_TAG.with(|t| t as *const _ as usize))
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel on the current pool,
/// and returns both results.
///
/// On a pool worker, `b` is exposed on the worker's Chase–Lev deque
/// for stealing while `a` runs inline; if nobody steals it, it is
/// popped back (a lock- and CAS-free owner pop) and run inline with no
/// cross-thread traffic. On a non-pool thread, `b` is injected into
/// the pool. With a single-threaded pool — or when the local deque
/// already holds `LOCAL_PENDING_LIMIT` pending jobs — both closures
/// simply run inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(w) = WORKER.get() {
        let registry = unsafe { &*w.registry };
        if registry.num_threads() <= 1 || registry.local_pending(w.index) >= LOCAL_PENDING_LIMIT {
            return (a(), b());
        }
        return join_on_worker(registry, w.index, a, b);
    }
    let registry = current_registry();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    join_external(&registry, a, b)
}

/// After `a` has finished on a worker, gets `b` back: pops the local
/// deque down — executing any scope-spawned jobs `a` left above `b` —
/// until either `b` itself comes back (returns `true`: the un-stolen
/// fast path, a lock- and CAS-free Chase–Lev owner pop) or the pop
/// runs dry, which proves a thief claimed `b` (returns `false` once
/// `b`'s latch is set, after helping with other pool work meanwhile).
fn reclaim_or_wait(
    registry: &Registry,
    index: usize,
    job_ref: JobRef,
    probe: impl Fn() -> bool + Copy,
) -> bool {
    loop {
        if probe() {
            return false;
        }
        match registry.pop_local(index) {
            Some(job) if job.same_job(job_ref) => return true,
            // A scope job pushed above `b`: run it and keep popping.
            Some(job) => unsafe { registry.execute_job(index, job) },
            None => {
                registry.wait_until(index, probe);
                return false;
            }
        }
    }
}

fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_ref = unsafe { job_b.as_job_ref() };
    registry.push_local(index, job_ref);
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(v) => v,
        Err(payload) => {
            // Reclaim `b` before unwinding: a thief may hold a pointer
            // into this stack frame. Popped back un-stolen, it is
            // dropped un-run (matching rayon's panic semantics).
            let _ = reclaim_or_wait(registry, index, job_ref, || job_b.probe());
            panic::resume_unwind(payload);
        }
    };
    if reclaim_or_wait(registry, index, job_ref, || job_b.probe()) {
        let rb = job_b.run_popped();
        (ra, rb)
    } else {
        (ra, job_b.into_result())
    }
}

fn join_external<A, B, RA, RB>(registry: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new_blocking(b);
    let latch = job_b.blocking.clone().expect("blocking job has a latch");
    let job_ref = unsafe { job_b.as_job_ref() };
    registry.inject(job_ref);
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(v) => v,
        Err(payload) => {
            if !registry.pop_injected_if(job_ref) {
                latch.wait();
            }
            panic::resume_unwind(payload);
        }
    };
    if registry.pop_injected_if(job_ref) {
        // The pool was saturated; run `b` here rather than queue-wait.
        let rb = job_b.run_popped();
        (ra, rb)
    } else {
        latch.wait();
        (ra, job_b.into_result())
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// A fork-join scope whose spawned closures run on the current pool's
/// workers; [`scope`] blocks until all of them complete.
pub struct Scope<'scope, 'env: 'scope> {
    registry: Arc<Registry>,
    /// Outstanding completions: the scope body plus every spawn.
    pending: AtomicUsize,
    latch: Latch,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    _marker: PhantomData<&'scope mut &'env ()>,
}

/// Pointer wrapper so a spawned closure can carry its scope across
/// threads; valid because `scope` outlives every spawned job.
struct ScopePtr<'scope, 'env>(*const Scope<'scope, 'env>);
unsafe impl Send for ScopePtr<'_, '_> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` onto the scope's pool. The closure may borrow
    /// anything that outlives the `scope` call and may spawn further
    /// tasks through the scope reference it receives.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Self);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope_ptr = scope_ptr; // capture the Send wrapper, not its field
            let scope = unsafe { &*scope_ptr.0 };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                scope
                    .panic
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
            }
            // Clone before the decrement: once `pending` hits zero the
            // scope frame may be freed by the waiting caller.
            let latch = scope.latch.clone();
            if scope.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                latch.set();
            }
        });
        // Safety: `scope` blocks until `pending` reaches zero, so the
        // 'scope borrows inside the task outlive its execution.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job = HeapJob::job_ref(task);
        match WORKER.get() {
            Some(w) if std::ptr::eq(w.registry, Arc::as_ptr(&self.registry)) => {
                let registry = unsafe { &*w.registry };
                registry.push_local(w.index, job);
            }
            _ => self.registry.inject(job),
        }
    }
}

/// Creates a fork-join scope on the current pool and blocks until the
/// body and every [`Scope::spawn`]ed task have completed. Panics from
/// the body or any task are propagated (first one wins).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let registry = current_registry();
    let s = Scope {
        registry: registry.clone(),
        pending: AtomicUsize::new(1),
        latch: new_latch(),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let body = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    if s.pending.fetch_sub(1, Ordering::SeqCst) != 1 {
        // Tasks still in flight: help if we are a worker of this pool,
        // otherwise block.
        match WORKER.get() {
            Some(w) if std::ptr::eq(w.registry, Arc::as_ptr(&registry)) => {
                let reg = unsafe { &*w.registry };
                let latch = &s.latch;
                reg.wait_until(w.index, || latch.probe());
            }
            _ => s.latch.wait(),
        }
    }
    let spawned_panic = s.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match body {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = spawned_panic {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers; `0` (the default) shares the global pool.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        if self.num_threads == 0 {
            return Ok(ThreadPool {
                registry: global_registry().clone(),
                handles: Vec::new(),
            });
        }
        let (registry, handles) = Registry::spawn(self.num_threads);
        Ok(ThreadPool { registry, handles })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A dedicated worker pool. [`install`](Self::install)ed closures
/// route `join`/`scope`/parallel-iterator work to this pool's workers;
/// dropping the pool terminates and joins them.
pub struct ThreadPool {
    registry: Arc<Registry>,
    /// Worker handles when this pool owns its threads (empty for the
    /// shared global pool).
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `f` with this pool as the current thread's pool context.
    /// Parallel work inside `f` executes on this pool's workers — and
    /// since those workers resolve their own registry, the context
    /// survives into nested spawns and stolen jobs.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(self.registry.clone()));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Point-in-time copy of this pool's scheduler counters: per-worker
    /// jobs/forks/steals/steal-retries/splitter-resets/sleeps and
    /// sampled deque depth, plus pool-wide injection and wakeup counts.
    /// Cumulative since pool creation — difference two snapshots for an
    /// interval view. Beyond-rayon extension (see `shims/README.md`).
    pub fn runtime_stats(&self) -> RuntimeStats {
        self.registry.runtime_stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // shared global pool
        }
        self.registry.terminate.store(true, Ordering::Release);
        {
            let _g = self
                .registry
                .sleep_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.registry.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
