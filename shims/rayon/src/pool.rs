//! The work-stealing fork-join runtime behind [`join`], [`scope`] and
//! the parallel iterators.
//!
//! Structure (a deliberately small rayon-core):
//!
//! * a [`Registry`] owns one mutex-guarded deque per worker plus a
//!   global injector queue for jobs arriving from non-pool threads;
//! * workers pop their own deque LIFO (cache-hot, depth-first) and
//!   steal FIFO from victims (breadth-first, big pieces first) — the
//!   classic work-stealing discipline;
//! * [`join`] pushes the second closure as a [`StackJob`] on the local
//!   deque, runs the first inline, then either pops the job back
//!   (nobody stole it → run inline, zero synchronization beyond the
//!   deque lock) or helps execute other jobs until the thief finishes;
//! * blocked non-pool threads wait on a latch (condvar), blocked
//!   workers *help* (keep executing stolen jobs) so the pool can never
//!   deadlock on nested parallelism;
//! * panics inside jobs are captured and re-thrown at the join point,
//!   matching rayon's semantics.
//!
//! The deques are `Mutex<VecDeque>` rather than lock-free Chase–Lev
//! deques: pushes/pops are a few tens of nanoseconds uncontended,
//! which the `SEQ_*` grain thresholds in `ptree`/`ctree` amortize to
//! noise. Swapping in the real rayon restores the lock-free fast path
//! with zero API change.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job awaiting execution. The pointee is
/// either a [`StackJob`] on some joiner's stack (kept alive until its
/// latch is set) or a leaked [`HeapJob`] (freed by `execute`).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: a JobRef only crosses threads under the queue protocol — the
// pointee outlives execution (stack jobs by latch discipline, heap jobs
// by ownership transfer) and the closures inside are `Send`.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// The pointee must still be alive and not yet executed.
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A completion flag with both a cheap probe (for helping workers) and
/// a blocking wait (for non-pool threads).
///
/// Always handled through an [`Arc`]: the job's final `set()` operates
/// on a clone taken *before* touching the flag, so the joiner may free
/// the job (and its embedded latch handle) the instant `probe()`
/// succeeds without racing the setter's condvar notification.
pub(crate) struct LatchInner {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

pub(crate) type Latch = Arc<LatchInner>;

pub(crate) fn new_latch() -> Latch {
    Arc::new(LatchInner {
        done: AtomicBool::new(false),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    })
}

impl LatchInner {
    fn set(&self) {
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn wait(&self) {
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !self.done.load(Ordering::Acquire) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A job living on the joiner's stack frame: the closure, a slot for
/// its result (or captured panic), and the completion latch.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: new_latch(),
        }
    }

    /// # Safety
    ///
    /// The returned ref must not outlive `self`, and `self` must stay
    /// alive until the latch is set (the join protocol guarantees it).
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(result);
        // Clone the latch out of the job first: after `set`, the joiner
        // may pop its stack frame (freeing the job) at any moment.
        let latch = this.latch.clone();
        latch.set();
    }

    /// Runs the closure on the current thread after the job was popped
    /// back un-stolen.
    fn run_popped(self) -> R {
        let f = self.f.into_inner().expect("popped job already executed");
        f()
    }

    /// Retrieves the result once the latch has been observed set.
    fn into_result(self) -> R {
        match self.result.into_inner().expect("latch set without result") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by [`Scope::spawn`]);
/// freed by its own execution.
struct HeapJob {
    f: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    fn job_ref(f: Box<dyn FnOnce() + Send>) -> JobRef {
        JobRef {
            data: Box::into_raw(Box::new(HeapJob { f })) as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job = Box::from_raw(ptr as *mut HeapJob);
        // The boxed closure does its own panic capture (scope protocol).
        (job.f)();
    }
}

// ---------------------------------------------------------------------------
// Registry (one per pool)
// ---------------------------------------------------------------------------

/// Shared state of one thread pool: worker deques, the injector queue
/// for external submissions, and the sleep machinery.
pub(crate) struct Registry {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    terminate: AtomicBool,
    next_victim: AtomicUsize,
}

/// Above this many pending jobs in a worker's local deque, `join` runs
/// both closures inline: enough parallelism is already exposed, and
/// queuing more fine-grained tasks would only pay deque traffic.
const LOCAL_PENDING_LIMIT: usize = 32;

impl Registry {
    /// Builds a registry and spawns its `n` worker threads.
    fn spawn(n: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            terminate: AtomicBool::new(false),
            next_victim: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|index| {
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name(format!("aspen-worker-{index}"))
                    .stack_size(8 << 20) // recursive tree ops fork deep
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.notify();
    }

    fn inject(&self, job: JobRef) {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.notify();
    }

    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleep_cv.notify_all();
        }
    }

    fn local_pending(&self, index: usize) -> usize {
        self.deques[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Pops the back of `index`'s deque if it is exactly `job` (the
    /// un-stolen fast path of `join`). Nested joins fully unwind their
    /// own pushes and thieves take from the front, so if the job is
    /// still present it can only be at the back.
    fn pop_local_if(&self, index: usize, job: JobRef) -> bool {
        let mut dq = self.deques[index].lock().unwrap_or_else(|e| e.into_inner());
        if dq.back().is_some_and(|j| std::ptr::eq(j.data, job.data)) {
            dq.pop_back();
            true
        } else {
            false
        }
    }

    /// Removes `job` from the injector if no worker claimed it yet.
    fn pop_injected_if(&self, job: JobRef) -> bool {
        let mut q = self.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.data, job.data)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// One round of the work-finding protocol: own deque (LIFO), then
    /// the injector, then steal from victims round-robin (FIFO).
    fn find_work(&self, index: Option<usize>) -> Option<JobRef> {
        if let Some(i) = index {
            if let Some(job) = self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(job);
        }
        let n = self.deques.len();
        let start = self.next_victim.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == index {
                continue;
            }
            if let Some(job) = self.deques[v]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    fn has_pending(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
        {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
    }

    /// Parks an idle worker without missed wakeups: the worker
    /// registers in `sleepers` *before* its final queue re-check, so a
    /// concurrent pusher either reads `sleepers > 0` (and must take
    /// `sleep_lock` to notify — which it cannot hold until the worker
    /// has reached `wait_timeout` and released it), or its push is
    /// already SeqCst-ordered before the re-check and gets seen there.
    fn sleep(&self) {
        let g = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.terminate.load(Ordering::Acquire) {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.has_pending() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _woken = match self.sleep_cv.wait_timeout(g, Duration::from_millis(100)) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Cooperative wait for worker threads: keep executing other jobs
    /// until `latch` is set. This is what makes nested fork-join
    /// deadlock-free — a blocked worker is never idle while work
    /// exists.
    fn wait_until(&self, index: usize, latch: &LatchInner) {
        let mut idle_spins = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work(Some(index)) {
                unsafe { job.execute() };
                idle_spins = 0;
            } else if idle_spins < 64 {
                std::hint::spin_loop();
                idle_spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.set(Some(WorkerHandle {
        registry: Arc::as_ptr(&registry),
        index,
    }));
    WORKER_REGISTRY.with(|r| *r.borrow_mut() = Some(registry.clone()));
    while !registry.terminate.load(Ordering::Acquire) {
        match registry.find_work(Some(index)) {
            // Job execution never unwinds: panics are captured inside.
            Some(job) => unsafe { job.execute() },
            None => registry.sleep(),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local pool context
// ---------------------------------------------------------------------------

/// Hot-path identity of a pool worker (raw pointer: the worker's own
/// `Arc` in `worker_main` keeps the registry alive for its lifetime).
#[derive(Clone, Copy)]
struct WorkerHandle {
    registry: *const Registry,
    index: usize,
}

thread_local! {
    static WORKER: Cell<Option<WorkerHandle>> = const { Cell::new(None) };
    static WORKER_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Stack of [`ThreadPool::install`] scopes on non-worker threads.
    static INSTALLED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<(Arc<Registry>, Vec<std::thread::JoinHandle<()>>)> = OnceLock::new();

/// The process-wide default registry, sized by the `ASPEN_THREADS`
/// environment variable when set (and positive), otherwise by
/// [`std::thread::available_parallelism`].
fn global_registry() -> &'static Arc<Registry> {
    let (registry, _handles) = GLOBAL.get_or_init(|| {
        let n = std::env::var("ASPEN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Registry::spawn(n)
    });
    registry
}

/// The registry the current thread's parallel work routes to: the
/// worker's own pool when on a pool thread, else the innermost
/// [`ThreadPool::install`], else the global pool.
///
/// Because spawned/stolen jobs execute *on pool worker threads*, code
/// inside them always resolves to the pool that runs it — this is how
/// pool context propagates into nested parallel work (the former
/// thread-local-only scheme lost it across thread boundaries).
fn current_registry() -> Arc<Registry> {
    if let Some(reg) = WORKER_REGISTRY.with(|r| r.borrow().clone()) {
        return reg;
    }
    if let Some(reg) = INSTALLED.with(|s| s.borrow().last().cloned()) {
        return reg;
    }
    global_registry().clone()
}

/// The number of worker threads parallel work on this thread will use.
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel on the current pool,
/// and returns both results.
///
/// On a pool worker, `b` is exposed on the worker's deque for stealing
/// while `a` runs inline; if nobody steals it, it is popped back and
/// run inline with no cross-thread traffic. On a non-pool thread, `b`
/// is injected into the pool. With a single-threaded pool — or when
/// the local deque already holds [`LOCAL_PENDING_LIMIT`] pending jobs
/// — both closures simply run inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(w) = WORKER.get() {
        let registry = unsafe { &*w.registry };
        if registry.num_threads() <= 1 || registry.local_pending(w.index) >= LOCAL_PENDING_LIMIT {
            return (a(), b());
        }
        return join_on_worker(registry, w.index, a, b);
    }
    let registry = current_registry();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    join_external(&registry, a, b)
}

fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_ref = unsafe { job_b.as_job_ref() };
    registry.push_local(index, job_ref);
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(v) => v,
        Err(payload) => {
            // Reclaim `b` before unwinding: a thief may hold a pointer
            // into this stack frame.
            if !registry.pop_local_if(index, job_ref) {
                registry.wait_until(index, &job_b.latch);
            }
            panic::resume_unwind(payload);
        }
    };
    if registry.pop_local_if(index, job_ref) {
        let rb = job_b.run_popped();
        (ra, rb)
    } else {
        registry.wait_until(index, &job_b.latch);
        (ra, job_b.into_result())
    }
}

fn join_external<A, B, RA, RB>(registry: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_ref = unsafe { job_b.as_job_ref() };
    registry.inject(job_ref);
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(v) => v,
        Err(payload) => {
            if !registry.pop_injected_if(job_ref) {
                job_b.latch.wait();
            }
            panic::resume_unwind(payload);
        }
    };
    if registry.pop_injected_if(job_ref) {
        // The pool was saturated; run `b` here rather than queue-wait.
        let rb = job_b.run_popped();
        (ra, rb)
    } else {
        job_b.latch.wait();
        (ra, job_b.into_result())
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// A fork-join scope whose spawned closures run on the current pool's
/// workers; [`scope`] blocks until all of them complete.
pub struct Scope<'scope, 'env: 'scope> {
    registry: Arc<Registry>,
    /// Outstanding completions: the scope body plus every spawn.
    pending: AtomicUsize,
    latch: Latch,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    _marker: PhantomData<&'scope mut &'env ()>,
}

/// Pointer wrapper so a spawned closure can carry its scope across
/// threads; valid because `scope` outlives every spawned job.
struct ScopePtr<'scope, 'env>(*const Scope<'scope, 'env>);
unsafe impl Send for ScopePtr<'_, '_> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` onto the scope's pool. The closure may borrow
    /// anything that outlives the `scope` call and may spawn further
    /// tasks through the scope reference it receives.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Self);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope_ptr = scope_ptr; // capture the Send wrapper, not its field
            let scope = unsafe { &*scope_ptr.0 };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                scope
                    .panic
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
            }
            // Clone before the decrement: once `pending` hits zero the
            // scope frame may be freed by the waiting caller.
            let latch = scope.latch.clone();
            if scope.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                latch.set();
            }
        });
        // Safety: `scope` blocks until `pending` reaches zero, so the
        // 'scope borrows inside the task outlive its execution.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job = HeapJob::job_ref(task);
        match WORKER.get() {
            Some(w) if std::ptr::eq(w.registry, Arc::as_ptr(&self.registry)) => {
                let registry = unsafe { &*w.registry };
                registry.push_local(w.index, job);
            }
            _ => self.registry.inject(job),
        }
    }
}

/// Creates a fork-join scope on the current pool and blocks until the
/// body and every [`Scope::spawn`]ed task have completed. Panics from
/// the body or any task are propagated (first one wins).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let registry = current_registry();
    let s = Scope {
        registry: registry.clone(),
        pending: AtomicUsize::new(1),
        latch: new_latch(),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let body = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    if s.pending.fetch_sub(1, Ordering::SeqCst) != 1 {
        // Tasks still in flight: help if we are a worker of this pool,
        // otherwise block.
        match WORKER.get() {
            Some(w) if std::ptr::eq(w.registry, Arc::as_ptr(&registry)) => {
                let reg = unsafe { &*w.registry };
                reg.wait_until(w.index, &s.latch);
            }
            _ => s.latch.wait(),
        }
    }
    let spawned_panic = s.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match body {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = spawned_panic {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers; `0` (the default) shares the global pool.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        if self.num_threads == 0 {
            return Ok(ThreadPool {
                registry: global_registry().clone(),
                handles: Vec::new(),
            });
        }
        let (registry, handles) = Registry::spawn(self.num_threads);
        Ok(ThreadPool { registry, handles })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A dedicated worker pool. [`install`](Self::install)ed closures
/// route `join`/`scope`/parallel-iterator work to this pool's workers;
/// dropping the pool terminates and joins them.
pub struct ThreadPool {
    registry: Arc<Registry>,
    /// Worker handles when this pool owns its threads (empty for the
    /// shared global pool).
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `f` with this pool as the current thread's pool context.
    /// Parallel work inside `f` executes on this pool's workers — and
    /// since those workers resolve their own registry, the context
    /// survives into nested spawns and stolen jobs.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(self.registry.clone()));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // shared global pool
        }
        self.registry.terminate.store(true, Ordering::Release);
        {
            let _g = self
                .registry
                .sleep_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.registry.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
