//! In-repo stand-in for [rayon](https://docs.rs/rayon) (the container
//! this reproduction builds in has no crates.io access, so external
//! dependencies are shimmed — see `shims/README.md`).
//!
//! The API surface matches what the workspace uses so that swapping the
//! real crate back in is a one-line `Cargo.toml` change:
//!
//! * data-parallel iterators ([`Par`], `par_iter`, `into_par_iter`,
//!   `par_chunks`, `par_sort_*`) run **sequentially** — identical
//!   results, no parallel speedup;
//! * [`scope`] spawns **real OS threads** (via [`std::thread::scope`]),
//!   so worklist engines and the streaming engine's concurrency tests
//!   exercise genuine parallelism;
//! * [`join`] runs its closures sequentially (it sits on hot recursive
//!   paths where per-call thread spawning would be pathological).

use std::cell::Cell;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A "parallel" iterator: a newtype over a sequential [`Iterator`] that
/// also exposes the rayon-specific combinators (`reduce` with identity,
/// `flat_map_iter`, …) as inherent methods.
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    #[inline]
    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    #[inline]
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, U, F>> {
        Par(self.0.flat_map(f))
    }

    /// rayon's cheaper `flat_map` over serial inner iterators.
    #[inline]
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, U, F>> {
        Par(self.0.flat_map(f))
    }

    #[inline]
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    #[inline]
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    #[inline]
    pub fn copied<'a, T>(self) -> Par<std::iter::Copied<I>>
    where
        T: 'a + Copy,
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.copied())
    }

    #[inline]
    pub fn cloned<'a, T>(self) -> Par<std::iter::Cloned<I>>
    where
        T: 'a + Clone,
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.cloned())
    }

    #[inline]
    pub fn chain<Z: IntoParallelIterator<Item = I::Item>>(
        self,
        other: Z,
    ) -> Par<std::iter::Chain<I, Z::Iter>> {
        Par(self.0.chain(other.into_par_iter().0))
    }

    /// rayon's `reduce(identity, op)` — folds sequentially.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Grain-size hint; a no-op here.
    #[inline]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Grain-size hint; a no-op here.
    #[inline]
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

/// Conversion into a [`Par`] iterator; blanket-implemented for every
/// [`IntoIterator`] so ranges, `Vec`s and references all work.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    #[inline]
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
    #[inline]
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(window_size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
    #[inline]
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    #[inline]
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    #[inline]
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_by(compare);
    }
    #[inline]
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }
    #[inline]
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key);
    }
    #[inline]
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// Runs both closures and returns their results. Sequential: `join`
/// sits on fine-grained recursive paths (tree builds) where spawning a
/// thread per call would swamp the work.
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A fork-join scope backed by [`std::thread::scope`]: every
/// [`Scope::spawn`] runs on a real OS thread, joined before [`scope`]
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on a new scoped thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which closures can be spawned onto real threads;
/// blocks until all spawned work completes.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

thread_local! {
    static POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads the "pool" reports: the `install`ed pool size
/// if inside [`ThreadPool::install`], otherwise the machine parallelism.
pub fn current_num_threads() -> usize {
    POOL_SIZE.with(|p| {
        p.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; the built pool only
/// carries a thread-count used to scope [`current_num_threads`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        if self.num_threads == 0 {
            // Real rayon treats 0 as "default"; the workspace never
            // relies on that, so accept it as such too.
            return Ok(ThreadPool { num_threads: None });
        }
        Ok(ThreadPool {
            num_threads: Some(self.num_threads),
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count override; work `install`ed on it runs on the
/// calling thread but observes the pool's `current_num_threads`.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_SIZE.with(|p| {
            let prev = p.get();
            p.set(self.num_threads.or(prev));
            let r = f();
            p.set(prev);
            r
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_chains() {
        let xs = [1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let s: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 15);
    }

    #[test]
    fn rayon_style_reduce() {
        let xs = [vec![1], vec![2, 3]];
        let flat = xs
            .par_iter()
            .map(|v| v.clone())
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(flat, vec![1, 2, 3]);
    }

    #[test]
    fn scope_runs_real_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let inside = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(inside, 3);
        assert!(current_num_threads() >= 1);
    }
}
