//! In-repo stand-in for [rayon](https://docs.rs/rayon) (the container
//! this reproduction builds in has no crates.io access, so external
//! dependencies are shimmed — see `shims/README.md`).
//!
//! Unlike the earlier sequential stand-in, this shim is a **real
//! work-stealing fork-join runtime** on lock-free Chase–Lev deques:
//!
//! * [`join`] executes both closures on pool workers — the second
//!   closure is exposed on the worker's Chase–Lev deque (`deque`
//!   module) for stealing while the first runs; popped back un-stolen,
//!   it runs inline with no lock and no CAS. An inline fallback covers
//!   single-threaded pools and saturated deques (`pool` module);
//! * [`scope`]/[`Scope::spawn`] route through the same pool's deques;
//! * the data-parallel iterators (`par_iter`, `into_par_iter`,
//!   `par_chunks*`, `par_sort*`, `zip`, `enumerate`, …) split
//!   **adaptively**: a task subdivides further only when the scheduler
//!   shows steal pressure (the task migrated across threads), so a
//!   lone worker drains almost fork-free while a loaded pool splits to
//!   full width (`iter` module);
//! * [`ThreadPool::install`] re-routes all of the above to a dedicated
//!   pool, and the context propagates into nested spawns because
//!   stolen jobs run *on that pool's workers* (each worker resolves
//!   its own registry);
//! * the default pool width honours the `ASPEN_THREADS` environment
//!   variable, falling back to the machine parallelism;
//! * **runtime introspection** (beyond-rayon extension): always-on
//!   per-worker scheduler counters behind
//!   [`ThreadPool::runtime_stats`] / [`current_runtime_stats`], and —
//!   under the `obs-trace` feature — a task-span tracer that records
//!   every pool-side job execution into `aspen-obs`'s per-thread ring
//!   buffers for Chrome `trace_event` export.
//!
//! The API surface matches what the workspace uses so that swapping
//! the real crate back in is a one-line `Cargo.toml` change. The
//! deque protocol, memory orderings and splitting heuristic are
//! documented in `docs/RUNTIME.md` at the repository root.

mod deque;
mod iter;
mod pool;

pub use iter::{
    FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
    ParallelSlice, ParallelSliceMut,
};
pub use pool::{
    current_num_threads, current_runtime_stats, join, scope, RuntimeStats, Scope, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder, WorkerRuntimeStats,
};

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn par_iter_chains() {
        let xs = [1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let s: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 15);
    }

    #[test]
    fn rayon_style_reduce() {
        let xs = [vec![1], vec![2, 3]];
        let flat = xs
            .par_iter()
            .map(|v| v.clone())
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(flat, vec![1, 2, 3]);
    }

    #[test]
    fn collect_preserves_order_on_pool() {
        pool(4).install(|| {
            let out: Vec<u64> = (0u64..100_000).into_par_iter().map(|x| x * 3).collect();
            assert_eq!(out.len(), 100_000);
            assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
        });
    }

    #[test]
    fn filter_zip_enumerate_on_pool() {
        pool(3).install(|| {
            let a: Vec<u32> = (0..50_000).collect();
            let b: Vec<u32> = (0..50_000).map(|x| x * 2).collect();
            let picked: Vec<(usize, u32)> = a
                .par_iter()
                .zip(&b)
                .enumerate()
                .filter(|(_, (&x, _))| x % 1000 == 0)
                .map(|(i, (&x, &y))| (i, x + y))
                .collect();
            assert_eq!(picked.len(), 50);
            assert_eq!(picked[1], (1000, 3000));
        });
    }

    #[test]
    fn sum_and_count_match_sequential() {
        pool(4).install(|| {
            let n = 200_000u64;
            let s: u64 = (0..n).into_par_iter().sum();
            assert_eq!(s, n * (n - 1) / 2);
            let c = (0..n).into_par_iter().filter(|x| x % 3 == 0).count();
            assert_eq!(c, (0..n).filter(|x| x % 3 == 0).count());
        });
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut xs: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E37) % 7919)
            .collect();
        let mut expect = xs.clone();
        expect.sort();
        pool(4).install(|| xs.par_sort_unstable());
        assert_eq!(xs, expect);
    }

    #[test]
    fn par_sort_by_key_is_stable() {
        let mut xs: Vec<(u32, u32)> = (0..50_000).map(|i| (i % 97, i)).collect();
        pool(4).install(|| xs.par_sort_by_key(|&(k, _)| k));
        // Stable: within equal keys the original (ascending) payload
        // order must survive.
        assert!(xs
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
    }

    #[test]
    fn join_runs_on_two_os_threads() {
        // Called from a non-pool thread: `a` runs here while `b` is
        // injected into the pool. `a` spins until `b` has recorded its
        // thread id, so the two sides provably overlap in time and
        // must be on distinct OS threads.
        use std::sync::atomic::AtomicBool;
        let p = pool(2);
        let b_thread = Mutex::new(None);
        let b_done = AtomicBool::new(false);
        let a_thread = p
            .install(|| {
                join(
                    || {
                        let deadline = std::time::Instant::now() + Duration::from_secs(10);
                        while !b_done.load(Ordering::Acquire)
                            && std::time::Instant::now() < deadline
                        {
                            std::thread::yield_now();
                        }
                        std::thread::current().id()
                    },
                    || {
                        *b_thread.lock().unwrap() = Some(std::thread::current().id());
                        b_done.store(true, Ordering::Release);
                    },
                )
            })
            .0;
        let b_thread = b_thread.lock().unwrap().expect("b never ran");
        assert_ne!(
            a_thread, b_thread,
            "join closures ran on a single OS thread"
        );
    }

    #[test]
    fn nested_joins_spread_across_pool() {
        // A fork tree above the inline threshold must touch >1 worker.
        let p = pool(4);
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        fn go(depth: usize, ids: &Mutex<HashSet<ThreadId>>) {
            if depth == 0 {
                std::thread::sleep(Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
                return;
            }
            join(|| go(depth - 1, ids), || go(depth - 1, ids));
        }
        p.install(|| go(6, &ids));
        assert!(
            ids.lock().unwrap().len() >= 2,
            "64-leaf join tree never left one thread"
        );
    }

    #[test]
    fn join_propagates_panics() {
        let p = pool(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                join(
                    || std::thread::sleep(Duration::from_millis(20)),
                    || panic!("boom-b"),
                )
            })
        }));
        assert!(result.is_err(), "panic in b was swallowed");
    }

    #[test]
    fn scope_runs_spawned_tasks() {
        use std::sync::atomic::AtomicUsize;
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_on_pool_uses_pool_workers() {
        let p = pool(2);
        let outside = std::thread::current().id();
        let ids: Mutex<Vec<ThreadId>> = Mutex::new(Vec::new());
        p.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        ids.lock().unwrap().push(std::thread::current().id());
                    });
                }
            });
        });
        let ids = ids.lock().unwrap();
        assert_eq!(ids.len(), 4);
        assert!(
            ids.iter().all(|&id| id != outside),
            "scope task ran on the calling thread instead of the pool"
        );
    }

    #[test]
    fn nested_spawns_and_recursive_scope_use() {
        let count = AtomicUsize::new(0);
        pool(3).install(|| {
            scope(|s| {
                for _ in 0..3 {
                    s.spawn(|s| {
                        count.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let inside = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(inside, 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn num_threads_propagates_into_pool_jobs() {
        // The old thread-local-only scheme reported the machine width
        // inside spawned jobs; the pool's workers must see the pool
        // width instead.
        let p = pool(3);
        let seen = Mutex::new(Vec::new());
        p.install(|| {
            scope(|s| {
                for _ in 0..3 {
                    s.spawn(|_| {
                        seen.lock().unwrap().push(current_num_threads());
                    });
                }
            });
        });
        assert_eq!(*seen.lock().unwrap(), vec![3, 3, 3]);
    }

    #[test]
    fn par_chunks_splits_across_threads() {
        // Regression: chunk iterators must weigh their *elements* — a
        // chunk-count weight sits below the splitting floor and ran
        // the whole thing on one thread.
        let data = vec![0u8; 1 << 20];
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool(4).install(|| {
            data.par_chunks(32 << 10).for_each(|chunk| {
                std::thread::sleep(Duration::from_millis(1));
                ids.lock().unwrap().insert(std::thread::current().id());
                std::hint::black_box(chunk.len());
            });
        });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "par_chunks never left one thread"
        );
    }

    #[test]
    fn vec_par_iter_drops_every_element_exactly_once() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let items: Vec<Arc<()>> = (0..10_000).map(|_| sentinel.clone()).collect();
        pool(4).install(|| {
            let n = items.into_par_iter().filter(|_| false).count();
            assert_eq!(n, 0);
        });
        assert_eq!(Arc::strong_count(&sentinel), 1, "leak or double drop");
    }

    #[test]
    fn zip_truncation_drops_unused_tail() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let long: Vec<Arc<()>> = (0..5_000).map(|_| sentinel.clone()).collect();
        let short: Vec<u32> = (0..100).collect();
        pool(2).install(|| {
            let n = long.into_par_iter().zip(short).count();
            assert_eq!(n, 100);
        });
        assert_eq!(
            Arc::strong_count(&sentinel),
            1,
            "zip-discarded tail leaked or double-dropped"
        );
    }

    #[test]
    fn runtime_stats_count_scheduler_activity() {
        let p = pool(4);
        // A steal can in principle lose every race on a loaded CI box;
        // re-run the workload until one lands (first pass in practice).
        for _ in 0..20 {
            p.install(|| {
                // Keep mapped values small: 2M full-width values would
                // overflow the u64 sum (which panics in debug builds).
                let s: u64 = (0..2_000_000u64)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) >> 56)
                    .sum();
                std::hint::black_box(s);
            });
            if p.runtime_stats().totals().steals > 0 {
                break;
            }
        }
        let stats = p.runtime_stats();
        assert_eq!(stats.workers.len(), 4);
        let t = stats.totals();
        assert!(t.forks > 0, "no forks recorded: {stats}");
        assert!(t.jobs > 0, "no job executions recorded: {stats}");
        assert!(t.steals > 0, "no steals recorded on a 4-wide pool: {stats}");
        assert!(
            t.splitter_resets > 0,
            "steals happened but no splitter reset: {stats}"
        );
        assert!(stats.injected > 0, "external join roots not counted");
        assert!(t.depth_samples > 0, "deque depth never sampled");
        assert_eq!(
            t.jobs,
            stats.workers.iter().map(|w| w.jobs).sum::<u64>(),
            "totals must sum the per-worker rows"
        );
        // The Display table renders one row per worker plus totals.
        let rendered = stats.to_string();
        assert!(rendered.contains("steals") && rendered.contains("total"));
    }

    #[test]
    fn runtime_stats_are_cumulative_and_monotone() {
        let p = pool(2);
        p.install(|| (0..100_000u64).into_par_iter().sum::<u64>());
        let before = p.runtime_stats().totals();
        p.install(|| (0..100_000u64).into_par_iter().sum::<u64>());
        let after = p.runtime_stats().totals();
        assert!(after.forks >= before.forks);
        assert!(after.jobs >= before.jobs);
        assert!(after.steals >= before.steals);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let run = |threads: usize| -> (Vec<u64>, u64, Vec<u32>) {
            pool(threads).install(|| {
                let mapped: Vec<u64> = (0u64..30_000).into_par_iter().map(|x| x ^ 0xF0F0).collect();
                let total: u64 = mapped.par_iter().copied().sum();
                let mut sorted: Vec<u32> = (0..30_000u32)
                    .map(|i| i.wrapping_mul(2654435761) >> 8)
                    .collect();
                sorted.par_sort_unstable();
                (mapped, total, sorted)
            })
        };
        assert_eq!(run(1), run(4));
    }
}
