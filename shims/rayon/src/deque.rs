//! Lock-free Chase–Lev work-stealing deques.
//!
//! One [`Deque`] per pool worker. The *owner* pushes and pops at the
//! bottom (LIFO, cache-hot, depth-first); *thieves* steal from the top
//! (FIFO, breadth-first — they take the biggest remaining pieces).
//! The algorithm and memory orderings follow Chase & Lev (SPAA'05) as
//! corrected for weak memory models by Lê, Pop, Cohen & Zappa Nardelli
//! ("Correct and Efficient Work-Stealing for Weak Memory Models",
//! PPoPP'13):
//!
//! * [`push`](Deque::push) writes the slot, issues a **release fence**,
//!   then publishes the new `bottom` — a thief that observes the new
//!   `bottom` (acquire) also observes the slot contents;
//! * [`pop`](Deque::pop) decrements `bottom` first, issues a **SeqCst
//!   fence**, then reads `top`: either the owner's decrement is
//!   globally visible before a concurrent thief reads `bottom`, or the
//!   thief's `top` increment is visible to the owner — so both can
//!   never claim the same element. The *last* element is arbitrated by
//!   a CAS on `top` (owner and thief race; exactly one wins);
//! * [`steal`](Deque::steal) reads `top` (acquire), fences SeqCst,
//!   reads `bottom` (acquire), speculatively reads the slot, then
//!   CASes `top` forward. A failed CAS means another thief (or the
//!   owner, racing for the last element) claimed the slot — the
//!   speculatively read value is discarded, so the occasional *torn*
//!   read of a recycled slot is never observed by callers.
//!
//! Slots hold the two words of a [`JobRef`] as independent relaxed
//! atomics rather than a raw memory blob: a thief's speculative read
//! can race an owner overwrite only after `top` has already moved past
//! the slot (the owner grows the buffer before wrapping onto live
//! indices), which forces the thief's CAS to fail — the per-word
//! atomics just keep that benign race defined behaviour in the Rust
//! memory model instead of UB.
//!
//! The circular buffer **grows** (never shrinks) when the owner pushes
//! into a full window. Growth copies the live logical indices into a
//! buffer of twice the capacity and publishes it with a release swap;
//! the old buffer is *retired*, not freed, until the deque itself is
//! dropped — an in-flight thief that loaded the old buffer pointer can
//! still read (stale but allocated) memory, and its CAS then decides
//! whether the value was current. Retirement makes reclamation trivial
//! (no epochs/hazard pointers) at the cost of keeping superseded
//! buffers alive; they total at most twice the peak buffer size.

use crate::pool::JobRef;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Initial slot count; must be a power of two.
const INITIAL_CAP: usize = 64;

/// One deque slot: the two words of a [`JobRef`], independently
/// atomic so racy speculative reads stay defined behaviour.
struct Slot {
    data: AtomicUsize,
    exec: AtomicUsize,
}

/// A growable power-of-two circular buffer indexed by the *logical*
/// position (masking happens internally).
struct Buffer {
    mask: usize,
    slots: Box<[Slot]>,
}

impl Buffer {
    fn new(cap: usize) -> Buffer {
        debug_assert!(cap.is_power_of_two());
        Buffer {
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| Slot {
                    data: AtomicUsize::new(0),
                    exec: AtomicUsize::new(0),
                })
                .collect(),
        }
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn write(&self, index: isize, job: JobRef) {
        let (data, exec) = job.into_words();
        let slot = &self.slots[index as usize & self.mask];
        slot.data.store(data, Ordering::Relaxed);
        slot.exec.store(exec, Ordering::Relaxed);
    }

    /// Speculative read: the value is only meaningful if a subsequent
    /// CAS on `top` proves the slot was still live.
    fn read(&self, index: isize) -> JobRef {
        let slot = &self.slots[index as usize & self.mask];
        let data = slot.data.load(Ordering::Relaxed);
        let exec = slot.exec.load(Ordering::Relaxed);
        // Safety: callers discard the value unless their CAS certifies
        // it (pop/steal protocol above), so a torn pair is never used.
        unsafe { JobRef::from_words(data, exec) }
    }
}

/// Outcome of a steal attempt, distinguishing "nothing there" from
/// "lost a race" so callers can decide whether to re-sweep victims
/// before sleeping.
#[derive(Clone, Copy)]
pub(crate) enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Another thread claimed the element first; retrying may succeed.
    Retry,
    /// The element at the top, now owned by the caller.
    Success(JobRef),
}

/// A lock-free Chase–Lev work-stealing deque of [`JobRef`]s.
///
/// `push`/`pop` may only be called by the owning worker thread;
/// `steal` (and the size probes) may be called from anywhere. The
/// owner-side fast path is fence-cheap: a push is two relaxed stores,
/// a release fence and a relaxed store; an uncontended non-last pop is
/// two relaxed ops, one SeqCst fence and a relaxed load — no CAS, no
/// lock, which is what makes a `join` whose second closure is popped
/// back un-stolen nearly free.
pub(crate) struct Deque {
    /// Next logical index the owner will push at. Only the owner
    /// writes it (pop's transient decrement included).
    bottom: AtomicIsize,
    /// Next logical index a thief will steal from. Advanced by CAS.
    top: AtomicIsize,
    /// Current buffer; replaced (never mutated in place) on growth.
    buffer: AtomicPtr<Buffer>,
    /// Superseded buffers, kept allocated so in-flight thieves can
    /// finish their speculative reads. Locked only during growth.
    /// The `Box` is load-bearing (not `clippy::vec_box` waste):
    /// thieves hold raw `*mut Buffer` pointers from the `AtomicPtr`,
    /// so retired buffers must keep their heap address — a `Vec<Buffer>`
    /// would move them on push.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
}

// Safety: the deque is shared across worker threads by design; the
// ownership discipline (push/pop owner-only) is enforced by the
// registry, and all shared state is atomic.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

impl Default for Deque {
    fn default() -> Self {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAP)))),
            retired: Mutex::new(Vec::new()),
        }
    }
}

impl Deque {
    /// Pushes a job at the bottom. **Owner only.**
    pub(crate) fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            buf = self.grow(t, b);
        }
        buf.write(b, job);
        // Publish the slot before the new bottom: a thief acquiring
        // `bottom` must see the job words.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops a job from the bottom (most recently pushed). **Owner
    /// only.** Returns `None` when the deque is empty — including the
    /// case where a thief won the race for the last element.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // The Dekker point: the store above must be globally ordered
        // against thieves' reads of `bottom` before we read `top`.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = buf.read(b);
            if t == b {
                // Last element: race thieves for it with a CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(job);
            }
            Some(job)
        } else {
            // Already empty; undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steals the job at the top (least recently pushed). Any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` read before the `bottom` read (mirror of the
        // owner's pop fence).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let job = buf.read(t);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(job)
    }

    /// Approximate live length; exact when quiescent. Used for the
    /// saturation heuristic and sleep probes only.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Doubles the buffer, copying live indices `[t, b)`. **Owner
    /// only** (called from `push`).
    #[cold]
    fn grow(&self, t: isize, b: isize) -> &Buffer {
        let old = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        let new = Buffer::new(old.cap() * 2);
        for i in t..b {
            new.write(i, old.read(i));
        }
        let new_ptr = Box::into_raw(Box::new(new));
        // Release: a thief loading the new pointer (acquire) sees the
        // copied slots.
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(unsafe { Box::from_raw(old_ptr) });
        unsafe { &*new_ptr }
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Retired buffers drop with the Mutex<Vec<_>>; the live buffer
        // needs explicit reclamation. Jobs still queued at drop are
        // JobRef copies — the pointees are owned elsewhere (stack jobs
        // by their joiner, heap jobs leak only if never executed, and
        // registry shutdown drains before dropping).
        let ptr = *self.buffer.get_mut();
        drop(unsafe { Box::from_raw(ptr) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Tagged dummy jobs: the tests never execute them, they only
    /// check claim accounting, so `data` carries a plain integer tag.
    fn tagged(tag: usize) -> JobRef {
        JobRef::tagged_for_test(tag)
    }

    fn tag_of(job: JobRef) -> usize {
        job.into_words().0
    }

    /// The ISSUE-mandated race: owner pops while a thief steals a
    /// deque that repeatedly holds exactly **one** element. Every
    /// round, exactly one side must claim the tag — a lost element
    /// (neither side) or a duplicated one (both sides) fails. This
    /// hammers the `t == b` CAS arbitration in `pop` against the CAS
    /// in `steal` from both sides for many thousands of interleavings.
    #[test]
    fn last_element_claimed_exactly_once() {
        const ROUNDS: usize = 200_000;
        let dq = Arc::new(Deque::default());
        let stop = Arc::new(AtomicBool::new(false));
        let stolen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

        let thief = {
            let dq = dq.clone();
            let stop = stop.clone();
            let stolen = stolen.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    if let Steal::Success(job) = dq.steal() {
                        got.push(tag_of(job));
                    }
                }
                // Drain anything published after the last sweep.
                while let Steal::Success(job) = dq.steal() {
                    got.push(tag_of(job));
                }
                stolen.lock().unwrap().extend(got);
            })
        };

        let mut popped = Vec::new();
        for round in 1..=ROUNDS {
            dq.push(tagged(round));
            if let Some(job) = dq.pop() {
                popped.push(tag_of(job));
            }
        }
        stop.store(true, Ordering::Release);
        thief.join().unwrap();

        let stolen = stolen.lock().unwrap();
        assert_eq!(
            popped.len() + stolen.len(),
            ROUNDS,
            "lost or duplicated element in the last-element race \
             (popped {}, stolen {})",
            popped.len(),
            stolen.len()
        );
        let mut all: Vec<usize> = popped.iter().chain(stolen.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ROUNDS, "duplicate claims for the same element");
    }

    /// Many thieves against an owner that pushes bursts and pops: all
    /// elements are claimed exactly once across all participants, and
    /// growth (bursts exceed INITIAL_CAP) doesn't lose live elements.
    #[test]
    fn burst_push_pop_steal_with_growth_is_linearizable() {
        const BURSTS: usize = 400;
        const BURST: usize = 192; // 3× INITIAL_CAP → several grows
        const THIEVES: usize = 3;

        let dq = Arc::new(Deque::default());
        let stop = Arc::new(AtomicBool::new(false));
        let claimed: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let dq = dq.clone();
                let stop = stop.clone();
                let claimed = claimed.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match dq.steal() {
                            Steal::Success(job) => got.push(tag_of(job)),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    claimed.lock().unwrap().extend(got);
                })
            })
            .collect();

        let mut owned = Vec::new();
        let mut next = 1usize;
        for _ in 0..BURSTS {
            for _ in 0..BURST {
                dq.push(tagged(next));
                next += 1;
            }
            // Pop about half the burst back; thieves race for the rest.
            for _ in 0..BURST / 2 {
                if let Some(job) = dq.pop() {
                    owned.push(tag_of(job));
                }
            }
        }
        while let Some(job) = dq.pop() {
            owned.push(tag_of(job));
        }
        stop.store(true, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }
        // Residue: elements whose last-element race the owner lost
        // after the thieves exited cannot exist — thieves drain until
        // Empty *after* observing stop, and the owner popped to empty
        // before setting stop.
        assert!(dq.is_empty());

        let claimed = claimed.lock().unwrap();
        let total = BURSTS * BURST;
        let mut seen: HashSet<usize> = HashSet::with_capacity(total);
        for &tag in owned.iter().chain(claimed.iter()) {
            assert!(seen.insert(tag), "element {tag} claimed twice");
        }
        assert_eq!(seen.len(), total, "elements lost");
    }

    /// Owner-only use behaves as a plain LIFO stack, across growth.
    #[test]
    fn sequential_lifo_order() {
        let dq = Deque::default();
        for i in 0..1000 {
            dq.push(tagged(i + 1));
        }
        assert_eq!(dq.len(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(tag_of(dq.pop().expect("non-empty")), i + 1);
        }
        assert!(dq.pop().is_none());
        assert!(dq.is_empty());
    }

    /// Steals come out FIFO (oldest first) when uncontended.
    #[test]
    fn steals_are_fifo() {
        let dq = Deque::default();
        for i in 0..100 {
            dq.push(tagged(i + 1));
        }
        for i in 0..100 {
            match dq.steal() {
                Steal::Success(job) => assert_eq!(tag_of(job), i + 1),
                _ => panic!("steal failed on a quiescent deque"),
            }
        }
        assert!(matches!(dq.steal(), Steal::Empty));
    }
}
