//! Genuinely parallel iterators over splittable sources.
//!
//! The design is a compact version of rayon's producer/consumer
//! plumbing: a [`ParallelIterator`] is a *splittable* description of a
//! sequence. Terminal operations ([`for_each`](ParallelIterator::for_each),
//! [`sum`](ParallelIterator::sum), [`reduce`](ParallelIterator::reduce),
//! [`collect`](ParallelIterator::collect), …) recursively
//! [`split`](ParallelIterator::split) the iterator and hand the halves
//! to [`crate::join`], then drain each leaf sequentially and merge
//! partial results in order — so order-sensitive terminals (`collect`,
//! ordered `reduce`) see exactly the sequential result.
//!
//! **How far to split is decided adaptively** (split-on-steal, the
//! [`Splitter`]): a task starts with a budget of `pool width` splits
//! that halves at each split, which exposes ~2×width pieces up front —
//! enough that every worker can grab one. A task splits *beyond* its
//! budget only when it detects that it was **stolen** (it is running
//! on a different thread than the one that forked it): a steal proves
//! other workers are hungry, so the task's half of the data is worth
//! subdividing further. An un-contended drain therefore pays a handful
//! of forks regardless of input size, while a loaded pool keeps
//! splitting to full width exactly where the steals happen — skewed
//! item costs rebalance without a statically tuned grain. The
//! [`MIN_SEQ_WEIGHT`] floor keeps pathological steal cascades from
//! splitting below amortization.
//!
//! Sources over contiguous data (slices, `Vec`s, ranges, chunks) are
//! [`IndexedParallelIterator`]s — they know their exact length and can
//! split at any index, which is what `zip` and `enumerate` need.
//! Adaptors preserve indexedness when they can (`map`, `copied`,
//! `enumerate`, `zip`) and degrade to plain splittability when they
//! cannot (`filter`, `flat_map_iter`).

use crate::pool;
use std::sync::Arc;

/// Tasks below twice this weight are never split further: even on the
/// lock-free deques a fork costs a deque round trip plus, if stolen, a
/// cross-thread latch handshake (~0.1 µs un-stolen, see
/// `docs/RUNTIME.md`), so a leaf should carry at least a few
/// microseconds of work even for cheap per-item bodies.
pub const MIN_SEQ_WEIGHT: usize = 128;

/// The adaptive split-on-steal heuristic (rayon's `Splitter`, on this
/// runtime's [`pool::thread_marker`]): each task carries a halving
/// split budget seeded with the pool width, and a task that observes
/// it was stolen — it runs under a different thread marker than the
/// one it was created under — resets its budget to the full width.
/// Copied (not shared) into both halves of every fork, so detection is
/// purely local: no atomics, just two TLS reads per decision.
#[derive(Clone, Copy)]
struct Splitter {
    splits: usize,
    origin: pool::ThreadMarker,
}

impl Splitter {
    fn new() -> Splitter {
        let threads = pool::current_num_threads();
        Splitter {
            // A 1-thread pool never splits: join would inline both
            // halves anyway, so forking is pure overhead.
            splits: if threads > 1 { threads } else { 0 },
            origin: pool::thread_marker(),
        }
    }

    /// Decides whether a task of `weight` should fork once more,
    /// halving the budget (or resetting it, if the task was stolen).
    fn try_split(&mut self, weight: usize) -> bool {
        if weight < 2 * MIN_SEQ_WEIGHT {
            return false;
        }
        let here = pool::thread_marker();
        if here != self.origin {
            // Stolen: thieves are idle-hungry, re-arm the full budget.
            self.origin = here;
            self.splits = pool::current_num_threads().max(self.splits);
            pool::note_splitter_reset();
            true
        } else if self.splits > 0 {
            self.splits /= 2;
            true
        } else {
            false
        }
    }
}

/// Recursive fork-join driver shared by every terminal operation.
fn drive<P, T>(
    p: P,
    mut splitter: Splitter,
    seq: &(impl Fn(P) -> T + Sync),
    merge: &(impl Fn(T, T) -> T + Sync),
) -> T
where
    P: ParallelIterator,
    T: Send,
{
    if splitter.try_split(p.weight()) {
        match p.split() {
            Ok((a, b)) => {
                let (ta, tb) = crate::join(
                    || drive(a, splitter, seq, merge),
                    || drive(b, splitter, seq, merge),
                );
                return merge(ta, tb);
            }
            Err(p) => return seq(p),
        }
    }
    seq(p)
}

/// A splittable, sequentially-drainable description of a sequence.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Approximate amount of *work* remaining, in underlying element
    /// units — not necessarily the item count: chunk iterators weigh
    /// their elements, so a handful of large chunks still splits
    /// across the pool. Exact for indexed sources, an upper bound
    /// under `filter`. Drives grain decisions only.
    fn weight(&self) -> usize;

    /// Approximate number of *items* this iterator will yield (used
    /// for collection capacity hints; defaults to [`weight`](Self::weight)).
    fn items_hint(&self) -> usize {
        self.weight()
    }

    /// Splits roughly in half, preserving order (`Ok`), or refuses
    /// because the iterator is too small (`Err`, returning it intact).
    fn split(self) -> Result<(Self, Self), Self>;

    /// Drains every item in order into a fold on the current thread.
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, Self::Item) -> Acc) -> Acc;

    // ---- adaptors -------------------------------------------------

    fn map<B, F>(self, f: F) -> Map<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter {
            base: self,
            pred: Arc::new(pred),
        }
    }

    fn filter_map<B, F>(self, f: F) -> FilterMap<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> Option<B> + Send + Sync,
    {
        FilterMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// rayon's `flat_map` over *serial* inner iterators.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
        }
    }

    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: 'a + Clone + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    // ---- terminals ------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(
            self,
            Splitter::new(),
            &|p: Self| p.fold_drain((), |(), x| f(x)),
            &|(), ()| (),
        );
    }

    /// rayon's `reduce(identity, op)`: leaves fold sequentially from
    /// `identity()`, partial results combine in order with `op`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        drive(
            self,
            Splitter::new(),
            &|p: Self| p.fold_drain(identity(), &op),
            &|a, b| op(a, b),
        )
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let total = drive(
            self,
            Splitter::new(),
            &|p: Self| {
                p.fold_drain(None::<S>, |acc, x| {
                    let x = S::sum(std::iter::once(x));
                    Some(match acc {
                        None => x,
                        Some(s) => S::sum([s, x].into_iter()),
                    })
                })
            },
            &|a, b| match (a, b) {
                (Some(a), Some(b)) => Some(S::sum([a, b].into_iter())),
                (a, None) => a,
                (None, b) => b,
            },
        );
        total.unwrap_or_else(|| S::sum(std::iter::empty::<Self::Item>()))
    }

    fn count(self) -> usize {
        drive(
            self,
            Splitter::new(),
            &|p: Self| p.fold_drain(0usize, |c, _| c + 1),
            &|a, b| a + b,
        )
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.reduce_optional(|a, b| if b > a { b } else { a })
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.reduce_optional(|a, b| if b < a { b } else { a })
    }

    /// Helper for optional reductions (`max`/`min`).
    fn reduce_optional<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        drive(
            self,
            Splitter::new(),
            &|p: Self| {
                p.fold_drain(None, |acc, x| {
                    Some(match acc {
                        None => x,
                        Some(a) => op(a, x),
                    })
                })
            },
            &|a, b| match (a, b) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (a, None) => a,
                (None, b) => b,
            },
        )
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Exact-length iterators that can split at any index — the extra
/// structure `zip` and `enumerate` require.
pub trait IndexedParallelIterator: ParallelIterator {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
        Z::Iter: IndexedParallelIterator,
    {
        let b = other.into_par_iter();
        let n = self.len().min(b.len());
        let (a, _) = self.split_at(n);
        let (b, _) = b.split_at(n);
        Zip { a, b }
    }

    /// Lower bound on leaf size when this iterator is split.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: min.max(1),
        }
    }
}

fn indexed_split<P: IndexedParallelIterator>(p: P) -> Result<(P, P), P> {
    let n = p.len();
    if n < 2 {
        Err(p)
    } else {
        Ok(p.split_at(n / 2))
    }
}

/// Conversion into a parallel iterator (ranges, `Vec`s, slice refs,
/// and parallel iterators themselves).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        drive(
            p,
            Splitter::new(),
            &|q: P| {
                let hint = q.items_hint().min(1 << 20);
                q.fold_drain(Vec::with_capacity(hint), |mut v, x| {
                    v.push(x);
                    v
                })
            },
            &|mut a: Vec<T>, mut b: Vec<T>| {
                a.append(&mut b);
                a
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            fn weight(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }
            fn split(self) -> Result<(Self, Self), Self> {
                indexed_split(self)
            }
            fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, $t) -> Acc) -> Acc {
                (self.start..self.end).fold(acc, f)
            }
        }
        impl IndexedParallelIterator for RangeParIter<$t> {
            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (
                    RangeParIter { start: self.start, end: mid },
                    RangeParIter { start: mid, end: self.end },
                )
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeParIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeParIter<$t> {
                let end = self.end.max(self.start);
                RangeParIter { start: self.start, end }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32, i64);

/// Parallel iterator over `&[T]` (shared references).
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn weight(&self) -> usize {
        self.slice.len()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, &'a T) -> Acc) -> Acc {
        self.slice.iter().fold(acc, f)
    }
}

impl<T: Sync> IndexedParallelIterator for SlicePar<'_, T> {
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SlicePar { slice: l }, SlicePar { slice: r })
    }
}

/// The heap buffer behind a [`VecParIter`]: shared by every split-off
/// range, freed (capacity only, no element drops) when the last range
/// goes away. Element ownership lives in the ranges.
struct VecBuf<T> {
    ptr: *mut T,
    cap: usize,
}

// Safety: ranges over the buffer are disjoint, so concurrent drains
// from different threads never touch the same element; `T: Send` is
// required wherever items actually move across threads.
unsafe impl<T: Send> Send for VecBuf<T> {}
unsafe impl<T: Send> Sync for VecBuf<T> {}

impl<T> Drop for VecBuf<T> {
    fn drop(&mut self) {
        // Reconstitute with len 0: frees the allocation, drops nothing
        // (the ranges have already consumed or dropped every element).
        unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) };
    }
}

/// Parallel iterator over an owned `Vec` (yields items by value).
///
/// Splitting is `O(1)`: every split shares the original allocation
/// and narrows an index range, instead of copying halves into fresh
/// `Vec`s at each recursion level. Each range owns the elements in
/// `[start, end)` — un-drained elements are dropped with the range.
pub struct VecParIter<T: Send> {
    buf: Arc<VecBuf<T>>,
    start: usize,
    end: usize,
}

impl<T: Send> Drop for VecParIter<T> {
    fn drop(&mut self) {
        for i in self.start..self.end {
            unsafe { std::ptr::drop_in_place(self.buf.ptr.add(i)) };
        }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn weight(&self) -> usize {
        self.end - self.start
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(mut self, mut acc: Acc, mut f: impl FnMut(Acc, T) -> Acc) -> Acc {
        while self.start < self.end {
            let i = self.start;
            // Advance before the read: if `f` unwinds, the moved-out
            // item is dropped by the unwind and our `Drop` only drops
            // the untouched remainder — no double drop.
            self.start += 1;
            let item = unsafe { std::ptr::read(self.buf.ptr.add(i)) };
            acc = f(acc, item);
        }
        acc
    }
}

impl<T: Send> IndexedParallelIterator for VecParIter<T> {
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        // Suppress `self`'s Drop (the two halves take over its range)
        // and move its Arc out so the reference count stays balanced.
        let this = std::mem::ManuallyDrop::new(self);
        let buf = unsafe { std::ptr::read(&this.buf) };
        let (start, end) = (this.start, this.end);
        let mid = start + index.min(end - start);
        (
            VecParIter {
                buf: buf.clone(),
                start,
                end: mid,
            },
            VecParIter {
                buf,
                start: mid,
                end,
            },
        )
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecParIter<T> {
        let mut v = std::mem::ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        VecParIter {
            buf: Arc::new(VecBuf { ptr, cap }),
            start: 0,
            end: len,
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// Identity conversions so an explicit `.into_par_iter()` result can
/// be fed to combinators like `zip` that take `IntoParallelIterator`.
macro_rules! impl_identity_into_par {
    ($name:ident < $($g:ident),* > where $($bound:tt)*) => {
        impl<$($g),*> IntoParallelIterator for $name<$($g),*>
        where
            Self: ParallelIterator,
            $($bound)*
        {
            type Iter = Self;
            type Item = <Self as ParallelIterator>::Item;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    };
}

impl_identity_into_par!(VecParIter<T> where T: Send,);
impl_identity_into_par!(RangeParIter<T> where T: Send,);

impl<'a, T: Sync> IntoParallelIterator for SlicePar<'a, T> {
    type Iter = Self;
    type Item = &'a T;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// Parallel iterator over fixed-size subslices (`par_chunks`).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    fn weight(&self) -> usize {
        // Work is proportional to the elements inside the chunks: a
        // chunk count here would stall splitting below MIN_SEQ_WEIGHT
        // chunks and serialize the big-block patterns parlib uses.
        self.slice.len()
    }
    fn items_hint(&self) -> usize {
        self.len()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, &'a [T]) -> Acc) -> Acc {
        self.slice.chunks(self.size).fold(acc, f)
    }
}

impl<T: Sync> IndexedParallelIterator for ParChunks<'_, T> {
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(cut);
        (
            ParChunks {
                slice: l,
                size: self.size,
            },
            ParChunks {
                slice: r,
                size: self.size,
            },
        )
    }
}

/// Parallel iterator over mutable fixed-size subslices
/// (`par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn weight(&self) -> usize {
        // Element count, not chunk count — see `ParChunks::weight`.
        self.slice.len()
    }
    fn items_hint(&self) -> usize {
        self.len()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, &'a mut [T]) -> Acc) -> Acc {
        self.slice.chunks_mut(self.size).fold(acc, f)
    }
}

impl<T: Send> IndexedParallelIterator for ParChunksMut<'_, T> {
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(cut);
        (
            ParChunksMut {
                slice: l,
                size: self.size,
            },
            ParChunksMut {
                slice: r,
                size: self.size,
            },
        )
    }
}

/// Parallel iterator over `&mut [T]` (exclusive references).
pub struct SliceParMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParMut<'a, T> {
    type Item = &'a mut T;
    fn weight(&self) -> usize {
        self.slice.len()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, &'a mut T) -> Acc) -> Acc {
        self.slice.iter_mut().fold(acc, f)
    }
}

impl<T: Send> IndexedParallelIterator for SliceParMut<'_, T> {
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceParMut { slice: l }, SliceParMut { slice: r })
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<B, P, F> ParallelIterator for Map<P, F>
where
    B: Send,
    P: ParallelIterator,
    F: Fn(P::Item) -> B + Send + Sync,
{
    type Item = B;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        let f = self.f;
        match self.base.split() {
            Ok((a, b)) => Ok((
                Map {
                    base: a,
                    f: f.clone(),
                },
                Map { base: b, f },
            )),
            Err(base) => Err(Map { base, f }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, B) -> Acc) -> Acc {
        let g = self.f;
        self.base.fold_drain(acc, |a, x| f(a, g(x)))
    }
}

impl<B, P, F> IndexedParallelIterator for Map<P, F>
where
    B: Send,
    P: IndexedParallelIterator,
    F: Fn(P::Item) -> B + Send + Sync,
{
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
}

pub struct Filter<P, F> {
    base: P,
    pred: Arc<F>,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        let pred = self.pred;
        match self.base.split() {
            Ok((a, b)) => Ok((
                Filter {
                    base: a,
                    pred: pred.clone(),
                },
                Filter { base: b, pred },
            )),
            Err(base) => Err(Filter { base, pred }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, P::Item) -> Acc) -> Acc {
        let pred = self.pred;
        self.base
            .fold_drain(acc, |a, x| if pred(&x) { f(a, x) } else { a })
    }
}

pub struct FilterMap<P, F> {
    base: P,
    f: Arc<F>,
}

impl<B, P, F> ParallelIterator for FilterMap<P, F>
where
    B: Send,
    P: ParallelIterator,
    F: Fn(P::Item) -> Option<B> + Send + Sync,
{
    type Item = B;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        let f = self.f;
        match self.base.split() {
            Ok((a, b)) => Ok((
                FilterMap {
                    base: a,
                    f: f.clone(),
                },
                FilterMap { base: b, f },
            )),
            Err(base) => Err(FilterMap { base, f }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, B) -> Acc) -> Acc {
        let g = self.f;
        self.base.fold_drain(acc, |a, x| match g(x) {
            Some(y) => f(a, y),
            None => a,
        })
    }
}

pub struct FlatMapIter<P, F> {
    base: P,
    f: Arc<F>,
}

impl<U, P, F> ParallelIterator for FlatMapIter<P, F>
where
    U: IntoIterator,
    U::Item: Send,
    P: ParallelIterator,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        let f = self.f;
        match self.base.split() {
            Ok((a, b)) => Ok((
                FlatMapIter {
                    base: a,
                    f: f.clone(),
                },
                FlatMapIter { base: b, f },
            )),
            Err(base) => Err(FlatMapIter { base, f }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, U::Item) -> Acc) -> Acc {
        let g = self.f;
        self.base.fold_drain(acc, |mut a, x| {
            for y in g(x) {
                a = f(a, y);
            }
            a
        })
    }
}

pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: 'a + Copy + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        match self.base.split() {
            Ok((a, b)) => Ok((Copied { base: a }, Copied { base: b })),
            Err(base) => Err(Copied { base }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, T) -> Acc) -> Acc {
        self.base.fold_drain(acc, |a, x| f(a, *x))
    }
}

impl<'a, T, P> IndexedParallelIterator for Copied<P>
where
    T: 'a + Copy + Send + Sync,
    P: IndexedParallelIterator<Item = &'a T>,
{
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Copied { base: a }, Copied { base: b })
    }
}

pub struct Cloned<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    T: 'a + Clone + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        match self.base.split() {
            Ok((a, b)) => Ok((Cloned { base: a }, Cloned { base: b })),
            Err(base) => Err(Cloned { base }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, T) -> Acc) -> Acc {
        self.base.fold_drain(acc, |a, x| f(a, x.clone()))
    }
}

pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: IndexedParallelIterator,
{
    type Item = (usize, P::Item);
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, (usize, P::Item)) -> Acc) -> Acc {
        let mut i = self.offset;
        self.base.fold_drain(acc, |a, x| {
            let r = f(a, (i, x));
            i += 1;
            r
        })
    }
}

impl<P> IndexedParallelIterator for Enumerate<P>
where
    P: IndexedParallelIterator,
{
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
}

/// Lockstep pairing of two equal-length indexed iterators (lengths are
/// normalized to the minimum at construction).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn weight(&self) -> usize {
        self.a.weight()
    }
    fn items_hint(&self) -> usize {
        self.a.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        indexed_split(self)
    }
    fn fold_drain<Acc>(self, acc: Acc, mut f: impl FnMut(Acc, Self::Item) -> Acc) -> Acc {
        let Zip { a, b } = self;
        // Leaves are small (grain-bounded): buffer the left side, then
        // pair while draining the right.
        let mut left = Vec::with_capacity(a.len());
        a.fold_drain((), |(), x| left.push(x));
        let mut li = left.into_iter();
        b.fold_drain(acc, |acc, bx| match li.next() {
            Some(ax) => f(acc, (ax, bx)),
            None => unreachable!("zip sides have equal length"),
        })
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    fn len(&self) -> usize {
        self.a.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
}

/// Grain-size floor: refuses to split below `min` items per side.
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P> ParallelIterator for MinLen<P>
where
    P: ParallelIterator,
{
    type Item = P::Item;
    fn weight(&self) -> usize {
        self.base.weight()
    }
    fn items_hint(&self) -> usize {
        self.base.items_hint()
    }
    fn split(self) -> Result<(Self, Self), Self> {
        let min = self.min;
        if self.base.weight() < 2 * min {
            return Err(self);
        }
        match self.base.split() {
            Ok((a, b)) => Ok((MinLen { base: a, min }, MinLen { base: b, min })),
            Err(base) => Err(MinLen { base, min }),
        }
    }
    fn fold_drain<Acc>(self, acc: Acc, f: impl FnMut(Acc, P::Item) -> Acc) -> Acc {
        self.base.fold_drain(acc, f)
    }
}

impl<P> IndexedParallelIterator for MinLen<P>
where
    P: IndexedParallelIterator,
{
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            MinLen {
                base: a,
                min: self.min,
            },
            MinLen {
                base: b,
                min: self.min,
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Slice entry points
// ---------------------------------------------------------------------------

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SlicePar<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SlicePar<'_, T> {
        SlicePar { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceParMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    fn par_sort(&mut self)
    where
        T: Ord + Sync;
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Sync;
    fn par_sort_by<F>(&mut self, compare: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_by_key<K: Ord, F>(&mut self, key: F)
    where
        T: Sync,
        F: Fn(&T) -> K + Sync;
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        T: Sync,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParMut<'_, T> {
        SliceParMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
    fn par_sort(&mut self)
    where
        T: Ord + Sync,
    {
        par_merge_sort(self, &|a, b| a.cmp(b));
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Sync,
    {
        par_merge_sort(self, &|a, b| a.cmp(b));
    }
    fn par_sort_by<F>(&mut self, compare: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        par_merge_sort(self, &compare);
    }
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        par_merge_sort(self, &compare);
    }
    fn par_sort_by_key<K: Ord, F>(&mut self, key: F)
    where
        T: Sync,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self, &|a, b| key(a).cmp(&key(b)));
    }
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        T: Sync,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self, &|a, b| key(a).cmp(&key(b)));
    }
}

// ---------------------------------------------------------------------------
// Parallel sort
// ---------------------------------------------------------------------------

/// Below this length (or on a single-thread pool) sorting is handed to
/// `std`'s sequential sort directly.
const SEQ_SORT: usize = 8 << 10;

/// Stable parallel merge sort (also used for the `unstable` entry
/// points — stability is permitted there).
///
/// Three phases keep it panic-safe without per-element clones:
/// 1. sort aligned chunks in place, in parallel (`std` sort leaves the
///    slice intact on a comparator panic);
/// 2. merge chunk *index* runs into a permutation — only comparator
///    calls on shared references, no element moves, so a panic here
///    leaves the slice whole;
/// 3. apply the permutation with raw moves through a scratch buffer —
///    no user code runs in this phase, so it cannot unwind.
fn par_merge_sort<T: Send + Sync, F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(
    v: &mut [T],
    cmp: &F,
) {
    let n = v.len();
    if n <= SEQ_SORT || pool::current_num_threads() <= 1 {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }
    assert!(n < u32::MAX as usize, "par_sort supports < 2^32 elements");
    let chunk_len = n.div_ceil(pool::current_num_threads() * 2).max(1);

    fn split_point(lo: usize, hi: usize, chunk_len: usize) -> usize {
        lo + ((hi - lo) / 2 / chunk_len).max(1) * chunk_len
    }

    fn sort_chunks<T: Send, F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(
        sub: &mut [T],
        lo: usize,
        hi: usize,
        chunk_len: usize,
        cmp: &F,
    ) {
        if hi - lo <= chunk_len {
            sub.sort_by(|a, b| cmp(a, b));
            return;
        }
        let mid = split_point(lo, hi, chunk_len);
        let (l, r) = sub.split_at_mut(mid - lo);
        crate::join(
            || sort_chunks(l, lo, mid, chunk_len, cmp),
            || sort_chunks(r, mid, hi, chunk_len, cmp),
        );
    }

    /// Merged index order of `v[lo..hi]`, assuming each aligned chunk
    /// is sorted. Equal elements take the left run first → stable.
    fn sorted_order<T: Sync, F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(
        v: &[T],
        lo: usize,
        hi: usize,
        chunk_len: usize,
        cmp: &F,
    ) -> Vec<u32> {
        if hi - lo <= chunk_len {
            return (lo as u32..hi as u32).collect();
        }
        let mid = split_point(lo, hi, chunk_len);
        let (a, b) = crate::join(
            || sorted_order(v, lo, mid, chunk_len, cmp),
            || sorted_order(v, mid, hi, chunk_len, cmp),
        );
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if cmp(&v[b[j] as usize], &v[a[i] as usize]) == std::cmp::Ordering::Less {
                out.push(b[j]);
                j += 1;
            } else {
                out.push(a[i]);
                i += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    sort_chunks(v, 0, n, chunk_len, cmp);
    let order = sorted_order(v, 0, n, chunk_len, cmp);
    debug_assert_eq!(order.len(), n);

    // Apply the permutation: bitwise-move every element through the
    // scratch buffer exactly once, then move the run back. No user
    // code runs between the first read and the final write.
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    unsafe {
        let sp = scratch.as_mut_ptr();
        for (dst, &src) in order.iter().enumerate() {
            std::ptr::copy_nonoverlapping(v.as_ptr().add(src as usize), sp.add(dst), 1);
        }
        std::ptr::copy_nonoverlapping(sp, v.as_mut_ptr(), n);
        // `scratch` keeps len 0: the moved-out copies must not drop.
    }
}
