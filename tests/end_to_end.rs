//! Cross-crate integration: replay a full §7.3-style update stream
//! through the versioned graph and check every intermediate version
//! against a plain adjacency-set oracle.

use aspen::{CompressedEdges, EdgeSet, Graph, GraphView, VersionedGraph};
use graphgen::{build_update_stream, Rmat, Update};
use std::collections::{BTreeMap, BTreeSet};

type Oracle = BTreeMap<u32, BTreeSet<u32>>;

fn oracle_from(edges: &[(u32, u32)]) -> Oracle {
    let mut o: Oracle = BTreeMap::new();
    for &(u, v) in edges {
        o.entry(u).or_default().insert(v);
        o.entry(v).or_default();
    }
    o
}

fn assert_matches(g: &Graph<CompressedEdges>, o: &Oracle) {
    let total: usize = o.values().map(BTreeSet::len).sum();
    assert_eq!(g.num_edges() as usize, total, "edge count");
    assert_eq!(g.num_vertices(), o.len(), "vertex count");
    for (&v, neighbors) in o {
        let got = g
            .find_vertex(v)
            .unwrap_or_else(|| panic!("vertex {v} missing"))
            .edges
            .to_vec();
        let want: Vec<u32> = neighbors.iter().copied().collect();
        assert_eq!(got, want, "adjacency of {v}");
    }
}

#[test]
fn stream_replay_matches_oracle() {
    let edges = Rmat::new(10, 77).symmetric_graph_edges(30_000);
    let setup = build_update_stream(&edges, 2_000, 9);
    let vg: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&setup.initial_edges, Default::default()));
    let mut oracle = oracle_from(&setup.initial_edges);

    assert_matches(&vg.acquire(), &oracle);
    for (i, u) in setup.updates.iter().enumerate() {
        let (a, b) = u.endpoints();
        match u {
            Update::Insert(..) => {
                vg.insert_edges_undirected(&[(a, b)]);
                oracle.entry(a).or_default().insert(b);
                oracle.entry(b).or_default().insert(a);
            }
            Update::Delete(..) => {
                vg.delete_edges_undirected(&[(a, b)]);
                oracle.get_mut(&a).expect("endpoint exists").remove(&b);
                oracle.get_mut(&b).expect("endpoint exists").remove(&a);
            }
        }
        // Full validation periodically, cheap checks every step.
        let v = vg.acquire();
        let total: usize = oracle.values().map(BTreeSet::len).sum();
        assert_eq!(v.num_edges() as usize, total, "after update {i}");
        if i % 500 == 0 {
            assert_matches(&v, &oracle);
            v.check_invariants();
        }
    }
    assert_matches(&vg.acquire(), &oracle);
}

#[test]
fn batch_replay_matches_single_edge_replay() {
    let edges = Rmat::new(9, 5).symmetric_graph_edges(10_000);
    let setup = build_update_stream(&edges, 500, 3);

    // One at a time.
    let single: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&setup.initial_edges, Default::default()));
    // All inserts, then all deletes, as two batches.
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for u in &setup.updates {
        match *u {
            Update::Insert(a, b) => inserts.push((a, b)),
            Update::Delete(a, b) => deletes.push((a, b)),
        }
    }
    for &(a, b) in &inserts {
        single.insert_edges_undirected(&[(a, b)]);
    }
    for &(a, b) in &deletes {
        single.delete_edges_undirected(&[(a, b)]);
    }

    let batched: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&setup.initial_edges, Default::default()));
    batched.insert_edges_undirected(&inserts);
    batched.delete_edges_undirected(&deletes);

    let (a, b) = (single.acquire(), batched.acquire());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.num_vertices(), b.num_vertices());
    for v in a.vertex_ids() {
        assert_eq!(
            a.find_vertex(v).map(|e| e.edges.to_vec()),
            b.find_vertex(v).map(|e| e.edges.to_vec()),
            "vertex {v}"
        );
    }
}

#[test]
fn flat_snapshot_agrees_with_tree_access_after_updates() {
    let edges = Rmat::new(9, 12).symmetric_graph_edges(8_000);
    let vg: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&edges, Default::default()));
    vg.insert_edges_undirected(&[(0, 400), (1, 401), (2, 402)]);
    vg.delete_edges_undirected(&[(0, 400)]);
    let snap = vg.acquire();
    let flat = aspen::FlatSnapshot::new(&snap);
    for v in 0..flat.len() as u32 {
        assert_eq!(
            GraphView::neighbors(&*snap, v),
            GraphView::neighbors(&flat, v),
            "vertex {v}"
        );
    }
}
