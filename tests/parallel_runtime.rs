//! Cross-crate tests for the work-stealing fork-join runtime: proof
//! that `rayon::join` really executes on multiple OS threads, pool-size
//! invariance of the parallel tree operations, sequence primitives and
//! the adaptive (split-on-steal) iterator scheduler, and a
//! `VersionedGraph` stress test driven from inside the pool.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aspen::{CompressedEdges, Graph, VersionedGraph};
use ctree::{CTree, ChunkParams, DeltaCodec};
use ptree::Tree;

/// Acceptance proof for the runtime: above the grain thresholds,
/// `rayon::join`'s two closures execute on two distinct OS threads
/// that provably overlap in time (the first spins until the second —
/// stolen by a pool worker — reports in).
#[test]
fn join_executes_on_multiple_os_threads() {
    let b_thread = Mutex::new(None);
    let b_done = AtomicBool::new(false);
    let a_thread = parlib::with_threads(2, || {
        rayon::join(
            || {
                let deadline = Instant::now() + Duration::from_secs(10);
                while !b_done.load(Ordering::Acquire) && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                std::thread::current().id()
            },
            || {
                *b_thread.lock().unwrap() = Some(std::thread::current().id());
                b_done.store(true, Ordering::Release);
            },
        )
        .0
    });
    let b_thread = b_thread.lock().unwrap().expect("second closure never ran");
    assert_ne!(
        a_thread, b_thread,
        "rayon::join executed both closures on one OS thread"
    );
}

/// Batch updates driven from *inside* the pool: `rayon::scope` tasks
/// hammer `VersionedGraph` batch inserts concurrently (each insert
/// itself runs a parallel `MultiInsert` on the same pool), which
/// exercises nested fork-join plus writer-lock serialization.
#[test]
fn versioned_graph_survives_pool_driven_batch_inserts() {
    const TASKS: u32 = 4;
    const BATCHES: u32 = 8;
    const PER_BATCH: u32 = 64;

    let edges: Vec<(u32, u32)> = (0..64u32)
        .flat_map(|i| [(i, (i + 1) % 64), ((i + 1) % 64, i)])
        .collect();
    let vg: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&edges, Default::default()));
    let before = vg.acquire().num_edges();
    let applied = AtomicU64::new(0);

    parlib::with_threads(4, || {
        rayon::scope(|s| {
            for task in 0..TASKS {
                let vg = &vg;
                let applied = &applied;
                s.spawn(move |_| {
                    for b in 0..BATCHES {
                        // Disjoint vertex ranges per task: every edge is
                        // new, so the expected final count is exact.
                        let base = 1_000 + task * 10_000 + b * PER_BATCH * 2;
                        let batch: Vec<(u32, u32)> =
                            (0..PER_BATCH).map(|i| (task, base + i)).collect();
                        vg.insert_edges_undirected(&batch);
                        applied.fetch_add(u64::from(PER_BATCH), Ordering::Relaxed);
                    }
                });
            }
        });
    });

    assert_eq!(
        applied.load(Ordering::Relaxed),
        u64::from(TASKS * BATCHES * PER_BATCH)
    );
    let after = vg.acquire();
    assert_eq!(
        after.num_edges(),
        before + u64::from(TASKS * BATCHES * PER_BATCH) * 2,
        "pool-driven batches lost or duplicated edges"
    );
    after.check_invariants();
}

/// The frontier-parallel kernels (edge_map over core snapshots) give
/// identical answers on a 1-worker and a 4-worker pool.
#[test]
fn graph_kernels_pool_size_invariant() {
    let edges = graphgen::Rmat::new(10, 0xFEED).symmetric_graph_edges(20_000);
    let run = |threads: usize| {
        parlib::with_threads(threads, || {
            let g: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
            let bfs = algorithms::bfs(&g, 0);
            let cc = algorithms::connected_components(&g);
            let (pr, _iters) = algorithms::pagerank(&g, 1e-6, 30);
            (bfs.num_reached(), cc, pr)
        })
    };
    let (r1, c1, p1) = run(1);
    let (r4, c4, p4) = run(4);
    assert_eq!(r1, r4);
    assert_eq!(c1, c4);
    // PageRank tree-sums f64s and the split grain depends on the pool
    // width, so merge trees (and rounding) legitimately differ across
    // pool sizes — compare with a tolerance, not bit-for-bit.
    assert_eq!(p1.len(), p4.len());
    for (a, b) in p1.iter().zip(&p4) {
        assert!(
            (a - b).abs() < 1e-9,
            "pagerank diverged across pool sizes: {a} vs {b}"
        );
    }
}

fn ptree_of(xs: &BTreeSet<u32>) -> Tree<u32> {
    Tree::from_sorted(&xs.iter().copied().collect::<Vec<_>>())
}

fn ctree_of(xs: &BTreeSet<u32>, b: u32) -> CTree<DeltaCodec> {
    CTree::build(xs.iter().copied().collect(), ChunkParams::with_b(b))
}

fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = BTreeSet<u32>> {
    proptest::collection::vec(0..max, 0..len).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ptree set operations produce identical results on a 1-worker
    /// and a 4-worker pool (determinism under real parallelism).
    #[test]
    fn ptree_setops_pool_size_invariant(
        xs in sorted_set(40_000, 2500),
        ys in sorted_set(40_000, 2500),
    ) {
        let run = |threads: usize| {
            parlib::with_threads(threads, || {
                let a = ptree_of(&xs);
                let b = ptree_of(&ys);
                (
                    a.union(&b, |x, _| *x).to_vec(),
                    a.difference(&b).to_vec(),
                    a.intersection(&b, |x, _| *x).to_vec(),
                )
            })
        };
        let (u1, d1, i1) = run(1);
        let (u4, d4, i4) = run(4);
        prop_assert_eq!(&u1, &u4);
        prop_assert_eq!(&d1, &d4);
        prop_assert_eq!(&i1, &i4);
        // And both match the oracle.
        prop_assert_eq!(u1, xs.union(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(d1, xs.difference(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(i1, xs.intersection(&ys).copied().collect::<Vec<_>>());
    }

    /// ctree set operations (chunked + compressed) are pool-size
    /// invariant and match the oracle.
    #[test]
    fn ctree_setops_pool_size_invariant(
        xs in sorted_set(30_000, 2000),
        ys in sorted_set(30_000, 2000),
    ) {
        let run = |threads: usize| {
            parlib::with_threads(threads, || {
                let a = ctree_of(&xs, 64);
                let b = ctree_of(&ys, 64);
                (
                    a.union(&b).to_vec(),
                    a.difference(&b).to_vec(),
                    a.intersect(&b).to_vec(),
                )
            })
        };
        let (u1, d1, i1) = run(1);
        let (u4, d4, i4) = run(4);
        prop_assert_eq!(&u1, &u4);
        prop_assert_eq!(&d1, &d4);
        prop_assert_eq!(&i1, &i4);
        prop_assert_eq!(u1, xs.union(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(d1, xs.difference(&ys).copied().collect::<Vec<_>>());
        prop_assert_eq!(i1, xs.intersection(&ys).copied().collect::<Vec<_>>());
    }

    /// parlib scan/pack/filter_indices are pool-size invariant and
    /// match their sequential definitions.
    #[test]
    fn parlib_primitives_pool_size_invariant(
        xs in proptest::collection::vec(0u64..1000, 0..20_000),
    ) {
        let run = |threads: usize| {
            parlib::with_threads(threads, || {
                (
                    parlib::scan(&xs, 0u64, |a, b| a + b),
                    parlib::pack(&xs, |&x| x % 3 == 0),
                    parlib::filter_indices(&xs, |&x| x % 7 == 0),
                )
            })
        };
        let ((p1, t1), k1, f1) = run(1);
        let ((p4, t4), k4, f4) = run(4);
        prop_assert_eq!(&p1, &p4);
        prop_assert_eq!(t1, t4);
        prop_assert_eq!(&k1, &k4);
        prop_assert_eq!(&f1, &f4);
        // Sequential oracles.
        let mut acc = 0u64;
        for (i, x) in xs.iter().enumerate() {
            prop_assert_eq!(p1[i], acc);
            acc += x;
        }
        prop_assert_eq!(t1, acc);
        prop_assert_eq!(k1, xs.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    /// The adaptive splitter (split-on-steal) produces identical
    /// results at every pool width, for every adaptor shape the
    /// workspace leans on. Split *points* depend on nondeterministic
    /// steal timing, so this property is exactly what the runtime's
    /// ordered-merge discipline must guarantee: collect order, ordered
    /// reduction, and count/sum totals may not vary with where (or
    /// whether) the iterator forked. Chunked iteration is included
    /// because its weight (elements, not chunks) interacts with the
    /// splitter's MIN_SEQ_WEIGHT floor.
    #[test]
    fn adaptive_splitter_pool_size_invariant(
        xs in proptest::collection::vec(0u64..100_000, 0..30_000),
        chunk in 1usize..2048,
    ) {
        use rayon::prelude::*;
        let run = |threads: usize| {
            parlib::with_threads(threads, || {
                let mapped: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect();
                let filtered: Vec<u64> = xs.par_iter().copied().filter(|x| x % 3 == 0).collect();
                let expanded: Vec<u64> = xs
                    .par_iter()
                    .flat_map_iter(|&x| (0..x % 4).map(move |i| x + i))
                    .collect();
                let chunk_sums: Vec<u64> = xs.par_chunks(chunk).map(|c| c.iter().sum()).collect();
                // Note: only *associative* reductions are pool-size
                // invariant — split points vary with steal timing, so
                // a non-associative op would legitimately diverge.
                let maxed = xs.par_iter().copied().max();
                let total: u64 = xs.par_iter().copied().sum();
                (mapped, filtered, expanded, chunk_sums, maxed, total)
            })
        };
        let r1 = run(1);
        // Sequential oracles against the 1-thread run first.
        prop_assert_eq!(
            &r1.0,
            &xs.iter().map(|&x| x.wrapping_mul(2654435761)).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            &r1.1,
            &xs.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            &r1.3,
            &xs.chunks(chunk).map(|c| c.iter().sum()).collect::<Vec<u64>>()
        );
        prop_assert_eq!(r1.5, xs.iter().sum::<u64>());
        // Then cross-pool invariance at the widths CI exercises.
        for threads in [2, 4, 8] {
            prop_assert_eq!(&r1, &run(threads), "diverged at {} workers", threads);
        }
    }

    /// Batch MultiInsert/MultiDelete through the full graph stack is
    /// pool-size invariant.
    #[test]
    fn graph_batch_updates_pool_size_invariant(
        inserts in proptest::collection::vec((0u32..400, 0u32..400), 1..600),
        deletes in proptest::collection::vec((0u32..400, 0u32..400), 0..200),
    ) {
        let run = |threads: usize| {
            parlib::with_threads(threads, || {
                let g: Graph<CompressedEdges> = Graph::new(Default::default());
                let g = g.insert_edges(&aspen::symmetrize(&inserts));
                let g = g.delete_edges(&aspen::symmetrize(&deletes));
                (g.num_edges(), g.degree_distribution_digest())
            })
        };
        prop_assert_eq!(run(1), run(4));
    }
}

/// Helper digest so the property test above compares full adjacency
/// structure, not just counts.
trait DegreeDigest {
    fn degree_distribution_digest(&self) -> u64;
}

impl DegreeDigest for Graph<CompressedEdges> {
    fn degree_distribution_digest(&self) -> u64 {
        use aspen::GraphView;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in 0..self.id_bound() as u32 {
            for n in self.neighbors(v) {
                h = (h ^ (u64::from(v) << 32 | u64::from(n))).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}
