//! Cross-engine agreement: the same algorithms over the same graph,
//! executed on every representation and every engine, must produce
//! equivalent results. This is the load-bearing property behind the
//! paper's cross-system tables (11, 12, 14–15).

use algorithms::{bc, bfs, bfs_directed, connected_components, mis, verify_mis};
use aspen::{
    CompressedEdges, Direction, FlatSnapshot, Graph, GraphView, PlainEdges, UncompressedEdges,
};
use baselines::{worklist_bfs, worklist_mis, CompressedCsr, Csr, LlamaLike, StingerLike};
use graphgen::Rmat;

fn test_edges() -> Vec<(u32, u32)> {
    Rmat::new(10, 0xE6).symmetric_graph_edges(20_000)
}

fn id_space(edges: &[(u32, u32)]) -> usize {
    edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0)
}

#[test]
fn neighbors_agree_across_all_engines() {
    let edges = test_edges();
    let n = id_space(&edges);

    let aspen_de: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
    let aspen_plain: Graph<PlainEdges> = Graph::from_edges(&edges, Default::default());
    let aspen_unc: Graph<UncompressedEdges> = Graph::from_edges(&edges, ());
    let flat = FlatSnapshot::new(&aspen_de);
    let csr = Csr::from_edges(&edges);
    let ccsr = CompressedCsr::from_edges(&edges);
    let stinger = StingerLike::from_edges(n, &edges);
    let llama = LlamaLike::from_edges(n, &edges);

    for v in (0..n as u32).step_by(7) {
        let want = GraphView::neighbors(&csr, v);
        assert_eq!(GraphView::neighbors(&aspen_de, v), want, "aspen-de {v}");
        assert_eq!(
            GraphView::neighbors(&aspen_plain, v),
            want,
            "aspen-plain {v}"
        );
        assert_eq!(GraphView::neighbors(&aspen_unc, v), want, "aspen-unc {v}");
        assert_eq!(GraphView::neighbors(&flat, v), want, "flat {v}");
        assert_eq!(GraphView::neighbors(&ccsr, v), want, "ccsr {v}");
        let mut st = GraphView::neighbors(&stinger, v);
        st.sort_unstable();
        assert_eq!(st, want, "stinger {v}");
        let mut ll = GraphView::neighbors(&llama, v);
        ll.sort_unstable();
        assert_eq!(ll, want, "llama {v}");
    }
}

#[test]
fn bfs_distances_agree_across_engines() {
    let edges = test_edges();
    let n = id_space(&edges);
    let csr = Csr::from_edges(&edges);
    let src = (0..n as u32)
        .max_by_key(|&v| csr.degree(v))
        .expect("nonempty");

    let want = bfs(&csr, src).dist;

    let aspen_g: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
    let flat = FlatSnapshot::new(&aspen_g);
    assert_eq!(bfs(&flat, src).dist, want, "aspen flat");
    assert_eq!(
        bfs_directed(&aspen_g, src, Direction::ForceSparse).dist,
        want,
        "aspen tree sparse"
    );
    assert_eq!(
        bfs(&CompressedCsr::from_edges(&edges), src).dist,
        want,
        "ccsr"
    );
    assert_eq!(
        bfs(&StingerLike::from_edges(n, &edges), src).dist,
        want,
        "stinger"
    );
    assert_eq!(
        bfs(&LlamaLike::from_edges(n, &edges), src).dist,
        want,
        "llama"
    );
    assert_eq!(worklist_bfs(&csr, src), want, "galois-like worklist");
}

#[test]
fn bc_scores_agree_between_csr_and_aspen() {
    let edges = test_edges();
    let csr = Csr::from_edges(&edges);
    let src = (0..csr.id_bound() as u32)
        .max_by_key(|&v| csr.degree(v))
        .expect("nonempty");
    let want = bc(&csr, src);

    let aspen_g: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
    let flat = FlatSnapshot::new(&aspen_g);
    let got = bc(&flat, src);
    assert_eq!(got.num_levels, want.num_levels);
    for (v, (a, b)) in got.scores.iter().zip(&want.scores).enumerate() {
        assert!(
            (a - b).abs() < 1e-6 * (1.0 + b.abs()),
            "score[{v}]: {a} vs {b}"
        );
    }
}

#[test]
fn mis_results_are_valid_on_every_engine() {
    let edges = test_edges();
    let n = id_space(&edges);
    let csr = Csr::from_edges(&edges);
    let aspen_g: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
    let flat = FlatSnapshot::new(&aspen_g);
    let ccsr = CompressedCsr::from_edges(&edges);

    verify_mis(&csr, &mis(&csr, 11));
    verify_mis(&flat, &mis(&flat, 11));
    verify_mis(&ccsr, &mis(&ccsr, 11));
    // the Galois-like greedy MIS too
    let m = worklist_mis(&csr, 11);
    verify_mis(&csr, &m);
    // engines see identical graphs, so a set valid on one is valid on
    // all (spot-check across engines)
    verify_mis(&flat, &mis(&csr, 11));
    let _ = n;
}

#[test]
fn component_structure_agrees() {
    let edges = test_edges();
    let csr = Csr::from_edges(&edges);
    let aspen_g: Graph<CompressedEdges> = Graph::from_edges(&edges, Default::default());
    let flat = FlatSnapshot::new(&aspen_g);
    let a = connected_components(&csr);
    let b = connected_components(&flat);
    // label choice may differ only if tie-breaking differed, but
    // hash-min converges to per-component minima: labels must be equal.
    assert_eq!(a, b);
}
