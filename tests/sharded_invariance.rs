//! Shard-count invariance suite for the sharded multi-writer engine.
//!
//! Randomized batched update histories are pushed through
//! [`ShardedEngine`]s of 1, 2 and 4 shards — under both hash and range
//! routers, over delta-encoded and intervalized chunk codecs — and the
//! fully-drained final cut must agree with a **sequentially applied
//! unsharded oracle** on every analytics digest: directed edge count,
//! connected-component labels, and BFS distances. Both query paths are
//! exercised: the fan-out/merge algorithms (`cut.bfs`,
//! `cut.connected_components`) and the unsharded algorithms running
//! through the cut's `GraphView` impl. Every cut is also audited for
//! the mirror invariant (each arc's reverse present in the other
//! endpoint's shard) — the property the epoch-barrier protocol exists
//! to guarantee.
//!
//! Only the *final* state is compared because epoch boundaries depend
//! on writer timing; final state does not (per-batch last-wins
//! coalescing equals sequential replay for set operations).

use aspen_repro::algorithms;
use aspen_repro::aspen::{
    symmetrize, ChunkParams, CompressedEdges, EdgeSet, Graph, GraphView, IntervalEdges,
    ShardRouter, VertexId,
};
use aspen_repro::graphgen::Update;
use aspen_repro::stream::ShardedEngine;
use proptest::collection::vec;
use proptest::prelude::*;

fn sym(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId)> {
    symmetrize(edges)
}

/// The unsharded oracle: the initial graph with every update applied
/// in order, one at a time (no batching, no coalescing).
fn oracle<E: EdgeSet>(initial: &[(u32, u32)], updates: &[Update], cfg: E::Config) -> Graph<E> {
    let mut g = Graph::<E>::from_edges(initial, cfg);
    for &u in updates {
        g = match u {
            Update::Insert(a, b) => g.insert_edges(&sym(&[(a, b)])),
            Update::Delete(a, b) => g.delete_edges(&sym(&[(a, b)])),
        };
    }
    g
}

/// Drives one sharded engine to completion and checks every digest
/// against the oracle.
fn check_one<E: EdgeSet>(
    router: ShardRouter,
    initial: &[(u32, u32)],
    updates: &[Update],
    cfg: E::Config,
    want: &Graph<E>,
) {
    let engine = ShardedEngine::<E>::builder(router)
        .initial_arcs(initial)
        .edge_config(cfg)
        .start();
    let h = engine.handle();
    h.push_all(updates).expect("engine closed early");
    drop(h);
    let report = engine.finish();
    let cut = &report.final_cut;

    assert_eq!(
        cut.check_mirror_consistency(),
        0,
        "mirror-torn cut under {router:?}"
    );
    assert_eq!(cut.num_edges(), want.num_edges(), "edges under {router:?}");
    assert_eq!(cut.id_bound(), want.id_bound(), "bound under {router:?}");

    let want_cc = algorithms::connected_components(want);
    // Fan-out/merge path…
    assert_eq!(cut.connected_components(), want_cc, "cc under {router:?}");
    // …and the same algorithm through the cut's GraphView.
    assert_eq!(
        algorithms::connected_components(&**cut),
        want_cc,
        "cc via GraphView under {router:?}"
    );

    if want.id_bound() > 0 {
        // A source guaranteed in-bounds for both representations.
        let src = (want.id_bound() - 1) as u32 / 2;
        let want_bfs = algorithms::bfs(want, src).dist;
        assert_eq!(cut.bfs(src).dist, want_bfs, "bfs under {router:?}");
        assert_eq!(
            algorithms::bfs(&**cut, src).dist,
            want_bfs,
            "bfs via GraphView under {router:?}"
        );
    }
}

/// Replays one history at every shard count and router family.
fn check_invariance<E: EdgeSet>(raw_initial: &[(u32, u32)], updates: &[Update], cfg: E::Config) {
    let initial = sym(raw_initial);
    let want = oracle::<E>(&initial, updates, cfg);
    let id_span = want.id_bound().max(1) as u32;
    for shards in [1usize, 2, 4] {
        check_one::<E>(ShardRouter::hash(shards), &initial, updates, cfg, &want);
        check_one::<E>(
            ShardRouter::range(shards, id_span),
            &initial,
            updates,
            cfg,
            &want,
        );
    }
}

fn edge_strategy() -> impl Strategy<Value = (VertexId, VertexId)> {
    // Small id range: collisions, re-inserts, and deletes of live
    // edges are all common.
    (0u32..32, 0u32..32)
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        edge_strategy().prop_map(|(u, v)| Update::Insert(u, v)),
        edge_strategy().prop_map(|(u, v)| Update::Delete(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_matches_oracle_default_codec(
        initial in vec(edge_strategy(), 0..40),
        updates in vec(update_strategy(), 0..60),
    ) {
        check_invariance::<CompressedEdges>(&initial, &updates, Default::default());
    }

    #[test]
    fn sharded_matches_oracle_intervalized(
        initial in vec(edge_strategy(), 0..40),
        updates in vec(update_strategy(), 0..60),
    ) {
        // Tiny chunks so arcs cross chunk boundaries constantly.
        check_invariance::<IntervalEdges>(&initial, &updates, ChunkParams::with_b(4));
    }
}

#[test]
fn empty_history_all_shard_counts() {
    check_invariance::<CompressedEdges>(&[], &[], Default::default());
}

#[test]
fn delete_only_history() {
    // Deletes against existing and missing edges, including the whole
    // initial graph.
    let initial: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
    let mut updates: Vec<Update> = (0..8u32).map(|i| Update::Delete(i, (i + 1) % 8)).collect();
    updates.push(Update::Delete(100, 200));
    check_invariance::<CompressedEdges>(&initial, &updates, Default::default());
}

#[test]
fn insert_delete_reinsert_churn() {
    let initial = [(0u32, 1u32), (1, 2)];
    let updates = vec![
        Update::Insert(2, 3),
        Update::Delete(2, 3),
        Update::Insert(2, 3),
        Update::Delete(0, 1),
        Update::Insert(0, 1),
        Update::Insert(3, 4),
        Update::Delete(1, 2),
    ];
    check_invariance::<CompressedEdges>(&initial, &updates, Default::default());
    check_invariance::<IntervalEdges>(&initial, &updates, ChunkParams::with_b(4));
}
