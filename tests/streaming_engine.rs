//! Integration tests for the `aspen-stream` ingestion engine: snapshot
//! isolation and statistics under genuinely concurrent load — multiple
//! producer threads pushing through the bounded channel while the
//! writer loop batches and multiple query threads run analytics.

use aspen::{CompressedEdges, Graph, VersionedGraph};
use graphgen::{build_update_stream, Rmat, Update};
use std::sync::Arc;
use std::time::Duration;
use stream::{analytics, BatchPolicy, StreamEngine};

type VG = VersionedGraph<CompressedEdges>;

/// The §7.3 workload scaled down for CI: an rMAT graph and a shuffled
/// 90/10 insert/delete stream.
fn workload(sample: usize) -> (Arc<VG>, Vec<Update>) {
    let edges = Rmat::new(11, 0xA5EED).symmetric_graph_edges(60_000);
    let setup = build_update_stream(&edges, sample, 42);
    let vg: Arc<VG> = Arc::new(VersionedGraph::new(Graph::from_edges(
        &setup.initial_edges,
        Default::default(),
    )));
    (vg, setup.updates)
}

/// The acceptance scenario: ≥2 producers and ≥2 query threads running
/// concurrently with the writer loop; every acquired snapshot must be
/// internally consistent (its edge count matches a version the writer
/// installed) and the engine must report end-to-end update latency.
#[test]
fn concurrent_producers_and_queries_stay_consistent() {
    let (vg, updates) = workload(4_000);
    let initial_edges = vg.acquire().num_edges();

    let engine = StreamEngine::builder(vg.clone())
        .policy(BatchPolicy {
            max_batch: 256,
            max_linger: Duration::from_micros(500),
            channel_capacity: 1024,
        })
        .register_query(analytics::bfs_from_hub())
        .register_query(analytics::connected_components())
        .query_threads(2)
        .track_consistency(true)
        .start();

    // Two producers split the stream and push concurrently.
    let mid = updates.len() / 2;
    let producers: Vec<_> = [&updates[..mid], &updates[mid..]]
        .into_iter()
        .map(|half| {
            let handle = engine.handle();
            let half = half.to_vec();
            std::thread::spawn(move || handle.push_all(&half).expect("engine closed early"))
        })
        .collect();
    for p in producers {
        p.join().expect("producer panicked");
    }

    let report = engine.finish();

    // Everything pushed was applied, and every snapshot any query
    // thread acquired matched an installed version.
    assert_eq!(report.updates_applied, updates.len() as u64);
    assert_eq!(
        report.consistency_violations, 0,
        "snapshot isolation broken"
    );
    assert!(report.queries_run > 0, "no query ever completed");
    assert!(report.batches_applied > 0);

    // End-to-end update latency is reported for every single update.
    assert_eq!(report.update_e2e.count, updates.len() as u64);
    assert!(report.update_e2e.max > Duration::ZERO);
    assert!(report.update_e2e.p50 <= report.update_e2e.max);

    // The final state equals a sequential replay of the same stream:
    // batching + net-effect coalescing must not change semantics.
    // (Concurrent producers interleave halves, but the §7.3 stream
    // touches each edge once, so the final state is order-independent.)
    let mut inserts = 0i64;
    let mut deletes = 0i64;
    for u in &updates {
        if u.is_insert() {
            inserts += 1;
        } else {
            deletes += 1;
        }
    }
    let expect = initial_edges as i64 + 2 * (inserts - deletes);
    assert_eq!(vg.acquire().num_edges() as i64, expect);
    vg.acquire().check_invariants();
}

/// Old snapshots must survive the engine rewriting the graph under
/// them (the paper's `acquire` guarantee, exercised through the
/// engine's writer rather than direct calls).
#[test]
fn pre_engine_snapshot_is_isolated_from_ingestion() {
    let (vg, updates) = workload(1_000);
    let before = vg.acquire();
    let edges_before = before.num_edges();

    let engine = StreamEngine::builder(vg.clone()).start();
    let h = engine.handle();
    h.push_all(&updates).unwrap();
    drop(h);
    let report = engine.finish();

    assert_eq!(report.updates_applied, 1_000);
    assert_eq!(before.num_edges(), edges_before, "old snapshot mutated");
    before.check_invariants();
    assert_ne!(vg.acquire().num_edges(), edges_before);
}

/// Backpressure: a channel smaller than the stream forces producers to
/// block, and nothing is lost.
#[test]
fn bounded_channel_backpressure_loses_nothing() {
    let (vg, updates) = workload(2_000);
    let engine = StreamEngine::builder(vg)
        .policy(BatchPolicy {
            max_batch: 64,
            max_linger: Duration::from_micros(200),
            channel_capacity: 8, // far smaller than the stream
        })
        .start();

    let producers: Vec<_> = updates
        .chunks(updates.len() / 3 + 1)
        .map(|chunk| {
            let handle = engine.handle();
            let chunk = chunk.to_vec();
            std::thread::spawn(move || handle.push_all(&chunk).unwrap())
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.updates_applied, 2_000);
    assert_eq!(report.update_e2e.count, 2_000);
}

/// Torn-repair freedom for standing queries: a reader that observes a
/// standing result for version `v` must find the engine's installed
/// version already at `v` or later — repaired results may lag the
/// writer but can never get ahead of an install — and per-handle
/// result versions never go backwards. Exercised under concurrent
/// producers and spinning readers, then the final published results
/// are checked against from-scratch recomputation.
#[test]
fn standing_results_never_outrun_installed_versions() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (vg, updates) = workload(4_000);
    let engine = StreamEngine::builder(vg.clone())
        .policy(BatchPolicy {
            max_batch: 128,
            max_linger: Duration::from_micros(200),
            channel_capacity: 1024,
        })
        .register_standing(stream::standing::connected_components())
        .register_standing(stream::standing::bfs_from(0))
        .start();

    let handles = engine.standing_handles().to_vec();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut last = vec![0u64; handles.len()];
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for (i, h) in handles.iter().enumerate() {
                        // Read the result FIRST, the counter second:
                        // the invariant is that the result can only
                        // lag the counter, never lead it.
                        let r = h.read();
                        let installed = engine.installed_version();
                        assert!(
                            r.version <= installed,
                            "torn repair on {}: result v{} but installed v{}",
                            h.name(),
                            r.version,
                            installed
                        );
                        assert!(
                            r.version >= last[i],
                            "{} result went backwards: v{} after v{}",
                            h.name(),
                            r.version,
                            last[i]
                        );
                        last[i] = r.version;
                        reads += 1;
                    }
                }
                assert!(reads > 0, "reader never completed a round");
            });
        }
        let mid = updates.len() / 2;
        let producers: Vec<_> = [&updates[..mid], &updates[mid..]]
            .into_iter()
            .map(|half| {
                let h = engine.handle();
                let half = half.to_vec();
                s.spawn(move || h.push_all(&half).expect("engine closed early"))
            })
            .collect();
        for p in producers {
            p.join().expect("producer panicked");
        }
        // Let the writer drain its last lingering batches while the
        // readers keep hammering the invariant, then release them.
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Release);
    });

    let report = engine.finish();
    assert!(report.standing_repairs > 0, "writer never repaired");
    assert!(report.batches_applied > 0);

    // After the drain the final published results reflect the last
    // installed version exactly, and match from-scratch recomputation.
    let g = vg.acquire();
    let cc = handles[0].read();
    assert_eq!(cc.version, report.batches_applied);
    assert_eq!(*cc.values, algorithms::connected_components(&*g));
    let bfs = handles[1].read();
    assert_eq!(bfs.version, report.batches_applied);
    assert_eq!(*bfs.values, algorithms::bfs(&*g, 0).dist);
}

/// A max-linger flush must make a lone update visible without waiting
/// for a full batch.
#[test]
fn linger_flushes_partial_batches() {
    let (vg, _) = workload(100);
    let engine = StreamEngine::builder(vg.clone())
        .policy(BatchPolicy {
            max_batch: 1_000_000, // size-based flush unreachable
            max_linger: Duration::from_millis(1),
            channel_capacity: 16,
        })
        .start();
    let h = engine.handle();
    h.push(Update::Insert(0, 9_999)).unwrap();
    // Poll for visibility while the engine is still running — only the
    // linger timer can have flushed.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if vg.acquire().contains_edge(0, 9_999) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "update never became visible via linger flush"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(h);
    engine.finish();
}
