//! Crash-recovery suite for the durability subsystem: the whole engine
//! runs against an in-memory filesystem with scripted fault injection,
//! gets "killed" at every interesting point, and is recovered; an
//! auditor then proves the two durability promises:
//!
//! 1. **No acked batch is lost** — recovery restores the exact prefix
//!    of the update history whose WAL frames became durable.
//! 2. **No unacked batch is half-applied** — a torn, flipped, or
//!    dropped frame removes its batch *whole*; the recovered graph is
//!    always equal to some prefix of sequential replay, never a state
//!    between two updates.
//!
//! The single-engine matrix runs one-update batches so WAL write-op
//! `k` carries exactly batch seq `k + 1`, making the surviving prefix
//! deterministic per failpoint. The sharded matrix checks the weaker
//! but sufficient property: the recovered 4-shard state is mirror
//! consistent and equals *some* prefix of the push order (the epoch
//! cut recovery landed on).

use aspen::{
    symmetrize, ChunkParams, CompressedEdges, EdgeSet, Graph, ShardRouter, VersionedGraph,
};
use graphgen::Update;
use std::sync::Arc;
use std::time::Duration;
use stream::wal::{
    join, recover, recover_sharded, scan_segment, segment_name, DurabilityConfig, Failpoint,
    FailpointIo, Fault, FsyncPolicy, MemIo, Recovered, WalIo, WalRecord, WalWriter,
};
use stream::{BatchPolicy, IngestError, ShardedEngine, StatsReport, StreamEngine};

type G = Graph<CompressedEdges>;

// ---------------------------------------------------------------------
// Oracle and auditing helpers
// ---------------------------------------------------------------------

/// Deterministic mixed insert/delete stream over a small id range so
/// deletes regularly hit live edges (xorshift; no external RNG).
fn update_stream(n: usize, seed: u64) -> Vec<Update> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let r = next();
            let a = ((r >> 8) % 24) as u32;
            let b = ((r >> 34) % 24) as u32;
            if r % 10 < 7 {
                Update::Insert(a, b)
            } else {
                Update::Delete(a, b)
            }
        })
        .collect()
}

fn apply(g: G, u: Update) -> G {
    match u {
        Update::Insert(a, b) => g.insert_edges(&symmetrize(&[(a, b)])),
        Update::Delete(a, b) => g.delete_edges(&symmetrize(&[(a, b)])),
    }
}

/// Sequential replay of `ups` onto an empty graph — what every
/// recovered state is audited against.
fn oracle_after(ups: &[Update]) -> G {
    let mut g = G::new(ChunkParams::default());
    for &u in ups {
        g = apply(g, u);
    }
    g
}

fn edge_list(g: &G) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for v in g.vertex_ids() {
        for n in g.find_vertex(v).unwrap().edges.to_vec() {
            out.push((v, n));
        }
    }
    out.sort_unstable();
    out
}

fn merged_arcs(shards: &[G]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for g in shards {
        out.extend(edge_list(g));
    }
    out.sort_unstable();
    out
}

/// Audits the mirror invariant on recovered shard graphs directly:
/// every stored arc lives on its source's owner shard, and its reverse
/// exists on the target's owner shard.
fn assert_mirror_consistent(shards: &[G], router: &ShardRouter) {
    for (k, g) in shards.iter().enumerate() {
        for (v, w) in edge_list(g) {
            assert_eq!(
                router.shard_of(v),
                k,
                "arc ({v},{w}) stored on non-owner shard {k}"
            );
            assert!(
                shards[router.shard_of(w)].contains_edge(w, v),
                "mirror arc ({w},{v}) missing after recovery"
            );
        }
    }
}

/// Proves the recovered merged state equals sequential replay of some
/// prefix of the push order, returning the (earliest) prefix length.
fn assert_is_acked_prefix(merged: &[(u32, u32)], ups: &[Update]) -> usize {
    let mut g = G::new(ChunkParams::default());
    if merged == edge_list(&g) {
        return 0;
    }
    for (i, &u) in ups.iter().enumerate() {
        g = apply(g, u);
        if merged == edge_list(&g) {
            return i + 1;
        }
    }
    panic!("recovered state is not a prefix of the update history: {merged:?}");
}

// ---------------------------------------------------------------------
// Engine drivers
// ---------------------------------------------------------------------

/// One-update batches: the writer appends exactly one WAL frame per
/// pushed update, in push order, so write-op `k` is batch seq `k + 1`.
fn lockstep_policy() -> BatchPolicy {
    BatchPolicy {
        max_batch: 1,
        max_linger: Duration::from_micros(100),
        channel_capacity: 8,
    }
}

fn run_single(ups: &[Update], cfg: DurabilityConfig) -> StatsReport {
    let vg: Arc<VersionedGraph<CompressedEdges>> =
        Arc::new(VersionedGraph::new(G::new(ChunkParams::default())));
    let engine = StreamEngine::builder(vg)
        .policy(lockstep_policy())
        .durability(cfg)
        .start();
    let h = engine.handle();
    h.push_all(ups).expect("engine closed early");
    drop(h);
    engine.close()
}

fn run_sharded(ups: &[Update], io: Arc<dyn WalIo>, dir: &str) {
    let engine = ShardedEngine::<CompressedEdges>::builder(ShardRouter::hash(4))
        .edge_config(ChunkParams::default())
        .policy(BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(200),
            channel_capacity: 64,
        })
        .durability(DurabilityConfig::with_io(dir, io))
        .start();
    let h = engine.handle();
    h.push_all(ups).expect("engine closed early");
    drop(h);
    engine.close();
}

fn mem_cfg(mem: &Arc<MemIo>, dir: &str) -> DurabilityConfig {
    DurabilityConfig::with_io(dir, Arc::clone(mem) as Arc<dyn WalIo>)
}

fn recover_mem(mem: &Arc<MemIo>, dir: &str) -> Recovered<CompressedEdges> {
    recover::<CompressedEdges>(&mem_cfg(mem, dir), ChunkParams::default(), false).unwrap()
}

// ---------------------------------------------------------------------
// Single-engine crash matrix
// ---------------------------------------------------------------------

/// Kill the engine's disk at every fault kind × several failpoints.
/// With `FsyncPolicy::Always` and one-update batches, the durable
/// prefix is exactly the frames before the tripped op: recovery must
/// land on seq == at_op and the oracle prefix of that length.
#[test]
fn single_engine_recovers_the_exact_acked_prefix_under_faults() {
    let ups = update_stream(40, 7);
    let faults = [
        Fault::DropWrite,
        Fault::TruncateWrite(3),
        Fault::TruncateWrite(6),
        Fault::BitFlip(2),
        Fault::BitFlip(57),
        Fault::CrashHard,
    ];
    for fault in faults {
        for at_op in [0u64, 5, 17, 33] {
            let mem = MemIo::new();
            let fio = Arc::new(FailpointIo::new(Arc::clone(&mem)));
            fio.fail_at(Failpoint { at_op, fault });
            run_single(
                &ups,
                DurabilityConfig::with_io("wal", Arc::clone(&fio) as _),
            );
            mem.crash();

            let r = recover_mem(&mem, "wal");
            assert_eq!(r.seq, at_op, "{fault:?} at op {at_op}: wrong recovered seq");
            assert_eq!(
                edge_list(&r.graph),
                edge_list(&oracle_after(&ups[..at_op as usize])),
                "{fault:?} at op {at_op}: recovered graph is not the acked prefix"
            );
            // Recovery healed the log: a second pass finds nothing torn.
            let r2 = recover_mem(&mem, "wal");
            assert_eq!(r2.seq, r.seq);
            assert_eq!(r2.report.torn_tail_bytes, 0);
        }
    }
}

#[test]
fn clean_close_makes_every_acked_update_durable() {
    let ups = update_stream(40, 1);
    let mem = MemIo::new();
    let report = run_single(&ups, mem_cfg(&mem, "wal"));
    assert_eq!(report.updates_applied, 40);
    assert_eq!(report.wal_frames, 40);
    assert!(
        report.wal_fsyncs >= report.wal_frames,
        "Always policy must sync per frame"
    );

    mem.crash();
    let r = recover_mem(&mem, "wal");
    assert_eq!(r.seq, 40);
    assert_eq!(r.report.frames_replayed, 40);
    assert_eq!(edge_list(&r.graph), edge_list(&oracle_after(&ups)));
}

/// A grouped-fsync policy leaves a tail of unsynced frames while
/// running, but `close()` fsyncs that tail; and automatic checkpoints
/// bound how much of the log replay has to touch.
#[test]
fn everyn_policy_close_syncs_the_tail_and_checkpoints_bound_replay() {
    let ups = update_stream(50, 3);
    let mem = MemIo::new();
    let cfg = mem_cfg(&mem, "wal")
        .fsync(FsyncPolicy::EveryN(8))
        .checkpoint_every(20);
    let report = run_single(&ups, cfg);
    assert!(report.wal_checkpoints >= 1, "no automatic checkpoint fired");
    assert!(
        report.wal_fsyncs < report.wal_frames,
        "EveryN should batch fsyncs"
    );

    mem.crash();
    let r = recover_mem(&mem, "wal");
    assert_eq!(r.seq, 50, "close() must fsync the unsynced tail");
    assert!(r.report.checkpoint_seq >= 20);
    assert!(
        r.report.frames_replayed <= 30,
        "checkpoint at seq {} did not bound replay ({} frames)",
        r.report.checkpoint_seq,
        r.report.frames_replayed
    );
    assert_eq!(edge_list(&r.graph), edge_list(&oracle_after(&ups)));
}

#[test]
fn close_rejects_late_producers_instead_of_blocking() {
    let vg: Arc<VersionedGraph<CompressedEdges>> =
        Arc::new(VersionedGraph::new(G::new(ChunkParams::default())));
    let engine = StreamEngine::builder(vg).policy(lockstep_policy()).start();
    let h = engine.handle();
    h.push(Update::Insert(1, 2)).unwrap();
    let report = engine.close();
    assert_eq!(report.updates_applied, 1);

    assert!(matches!(
        h.push(Update::Insert(3, 4)),
        Err(IngestError::Closed(Update::Insert(3, 4)))
    ));
    assert!(matches!(
        h.try_send(Update::Insert(5, 6)),
        Err(IngestError::Closed(_))
    ));
    assert!(matches!(
        h.send_timeout(Update::Insert(7, 8), Duration::from_millis(1)),
        Err(IngestError::Closed(_))
    ));
}

/// Restart after a clean shutdown: recover, seed a new engine with the
/// recovered graph and seq, stream more updates, crash, recover again
/// — the final state must equal replaying the *whole* history.
#[test]
fn single_engine_resume_continues_the_wal_sequence() {
    let ups = update_stream(60, 23);
    let mem = MemIo::new();
    run_single(&ups[..30], mem_cfg(&mem, "wal"));

    let r1 = recover_mem(&mem, "wal");
    assert_eq!(r1.seq, 30);

    let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(r1.graph));
    let engine = StreamEngine::builder(vg)
        .policy(lockstep_policy())
        .durability(mem_cfg(&mem, "wal"))
        .first_seq(r1.seq)
        .start();
    let h = engine.handle();
    h.push_all(&ups[30..]).unwrap();
    drop(h);
    engine.close();

    mem.crash();
    let r2 = recover_mem(&mem, "wal");
    assert_eq!(
        r2.seq, 60,
        "resumed engine must continue the seq, not restart it"
    );
    assert_eq!(edge_list(&r2.graph), edge_list(&oracle_after(&ups)));
}

/// The same protocol against the real filesystem: run, close, reopen
/// the directory like a fresh process would, recover, compare.
#[test]
fn stdio_round_trip_recovers_after_reopen() {
    let dir = std::env::temp_dir().join(format!("aspen-crash-recovery-{}", std::process::id()));
    let dir = dir.to_string_lossy().into_owned();
    let _ = std::fs::remove_dir_all(&dir);

    let ups = update_stream(25, 31);
    let cfg = DurabilityConfig::new(dir.clone()).fsync(FsyncPolicy::EveryN(4));
    run_single(&ups, cfg.clone());

    let r = recover::<CompressedEdges>(&cfg, ChunkParams::default(), false).unwrap();
    assert_eq!(r.seq, 25);
    assert_eq!(edge_list(&r.graph), edge_list(&oracle_after(&ups)));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Sharded crash matrix
// ---------------------------------------------------------------------

/// `kill -9` a 4-shard engine mid-stream at assorted points: the four
/// shard logs freeze at an arbitrary interleaving, and recovery must
/// still land every shard on one consistent epoch cut — mirror intact,
/// merged state equal to a prefix of the push order.
#[test]
fn sharded_kill_nine_recovers_a_consistent_acked_prefix() {
    let ups = update_stream(80, 11);
    let router = ShardRouter::hash(4);
    for at_op in [0u64, 3, 11, 27, 55] {
        let mem = MemIo::new();
        let fio = Arc::new(FailpointIo::new(Arc::clone(&mem)));
        fio.fail_at(Failpoint {
            at_op,
            fault: Fault::CrashHard,
        });
        run_sharded(&ups, Arc::clone(&fio) as _, "dur");
        mem.crash();

        let r =
            recover_sharded::<CompressedEdges>(&mem_cfg(&mem, "dur"), 4, ChunkParams::default())
                .unwrap();
        assert_mirror_consistent(&r.shards, &router);
        let p = assert_is_acked_prefix(&merged_arcs(&r.shards), &ups);
        assert!(p <= ups.len(), "kill at op {at_op} recovered prefix {p}");
    }
}

/// Corruption faults (lost, torn, and bit-flipped writes) land in one
/// shard's log, then the power goes out a few writes later. The hit
/// shard's provable epoch regresses and the whole cut must regress
/// with it — never a state where the other shards run ahead.
#[test]
fn sharded_corruption_plus_crash_recovers_a_consistent_prefix() {
    let ups = update_stream(80, 13);
    let router = ShardRouter::hash(4);
    for fault in [
        Fault::DropWrite,
        Fault::TruncateWrite(5),
        Fault::BitFlip(19),
    ] {
        for at_op in [2u64, 9, 23] {
            let mem = MemIo::new();
            let fio = Arc::new(FailpointIo::new(Arc::clone(&mem)));
            fio.fail_at(Failpoint { at_op, fault });
            fio.fail_at(Failpoint {
                at_op: at_op + 6,
                fault: Fault::CrashHard,
            });
            run_sharded(&ups, Arc::clone(&fio) as _, "dur");
            mem.crash();

            let r = recover_sharded::<CompressedEdges>(
                &mem_cfg(&mem, "dur"),
                4,
                ChunkParams::default(),
            )
            .unwrap();
            assert_mirror_consistent(&r.shards, &router);
            assert_is_acked_prefix(&merged_arcs(&r.shards), &ups);
        }
    }
}

/// A clean sharded close checkpoints every shard at the final cut and
/// writes the manifest; recovery then restores the full state without
/// replaying a single frame.
#[test]
fn sharded_clean_close_checkpoints_the_final_cut() {
    let ups = update_stream(60, 17);
    let mem = MemIo::new();
    run_sharded(&ups, Arc::clone(&mem) as _, "dur");
    mem.crash();

    let r = recover_sharded::<CompressedEdges>(&mem_cfg(&mem, "dur"), 4, ChunkParams::default())
        .unwrap();
    assert_mirror_consistent(&r.shards, &ShardRouter::hash(4));
    assert_eq!(merged_arcs(&r.shards), edge_list(&oracle_after(&ups)));
    assert!(
        r.reports.iter().all(|rep| rep.frames_replayed == 0),
        "close() checkpoints should bound replay to zero frames: {:?}",
        r.reports
    );
}

/// Restart a sharded engine from a recovered cut and stream the rest
/// of the history: seqs and epochs continue, and the final recovery
/// equals the full oracle.
#[test]
fn sharded_resume_continues_from_the_recovered_cut() {
    let ups = update_stream(80, 29);
    let mem = MemIo::new();
    run_sharded(&ups[..40], Arc::clone(&mem) as _, "dur");

    let r1 = recover_sharded::<CompressedEdges>(&mem_cfg(&mem, "dur"), 4, ChunkParams::default())
        .unwrap();
    assert_eq!(
        merged_arcs(&r1.shards),
        edge_list(&oracle_after(&ups[..40]))
    );

    let engine = ShardedEngine::<CompressedEdges>::builder(ShardRouter::hash(4))
        .edge_config(ChunkParams::default())
        .policy(BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(200),
            channel_capacity: 64,
        })
        .durability(mem_cfg(&mem, "dur"))
        .recovered(&r1)
        .start();
    let h = engine.handle();
    h.push_all(&ups[40..]).unwrap();
    drop(h);
    engine.close();
    mem.crash();

    let r2 = recover_sharded::<CompressedEdges>(&mem_cfg(&mem, "dur"), 4, ChunkParams::default())
        .unwrap();
    assert_mirror_consistent(&r2.shards, &ShardRouter::hash(4));
    assert_eq!(merged_arcs(&r2.shards), edge_list(&oracle_after(&ups)));
    assert!(
        r2.epoch >= r1.epoch,
        "epochs went backwards across a resume"
    );
}

// ---------------------------------------------------------------------
// Adversarial WAL properties
// ---------------------------------------------------------------------

mod wal_prefix_properties {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;
    use stream::wal::encode_record_frame;

    fn op_strategy() -> impl Strategy<Value = Update> {
        prop_oneof![
            ((0u32..16), (0u32..16)).prop_map(|(a, b)| Update::Insert(a, b)),
            ((0u32..16), (0u32..16)).prop_map(|(a, b)| Update::Delete(a, b)),
        ]
    }

    /// Writes each update as one batch frame and returns the durable
    /// segment bytes plus the oracle graph after every prefix.
    fn durable_log_for(ups: &[Update]) -> (Vec<u8>, Vec<G>) {
        let mem = MemIo::new();
        let mut w = WalWriter::open(
            Arc::clone(&mem) as Arc<dyn WalIo>,
            "wal",
            FsyncPolicy::Always,
            1 << 20,
            0,
        )
        .unwrap();
        let mut g = G::new(ChunkParams::default());
        let mut prefixes = vec![g.clone()];
        for (i, &u) in ups.iter().enumerate() {
            let (ins, del) = match u {
                Update::Insert(a, b) => (vec![(a, b)], vec![]),
                Update::Delete(a, b) => (vec![], vec![(a, b)]),
            };
            w.append_batch(i as u64 + 1, &ins, &del).unwrap();
            g = apply(g, u);
            prefixes.push(g.clone());
        }
        drop(w);
        let bytes = mem.read(&join("wal", &segment_name(1))).unwrap();
        (bytes, prefixes)
    }

    fn recover_bytes(bytes: &[u8]) -> Recovered<CompressedEdges> {
        let mem = MemIo::new();
        mem.create_dir_all("wal").unwrap();
        mem.atomic_write(&join("wal", &segment_name(1)), bytes)
            .unwrap();
        recover_mem(&mem, "wal")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every byte-prefix of a valid log recovers to a prefix of the
        /// batch history — never a panic, never a partial batch.
        #[test]
        fn any_truncation_recovers_to_a_prefix(
            ups in vec(op_strategy(), 1..30),
            cut in 0usize..1000,
        ) {
            let (bytes, prefixes) = durable_log_for(&ups);
            let t = bytes.len() * cut / 1000;
            let r = recover_bytes(&bytes[..t]);
            prop_assert!((r.seq as usize) < prefixes.len());
            prop_assert_eq!(
                edge_list(&r.graph),
                edge_list(&prefixes[r.seq as usize])
            );
        }

        /// Flipping any single bit anywhere in the log still recovers
        /// to a prefix: the CRC walls off the damaged frame and
        /// everything after it.
        #[test]
        fn any_single_bit_flip_recovers_to_a_prefix(
            ups in vec(op_strategy(), 1..30),
            pos in 0usize..1000,
            bit in 0u32..8,
        ) {
            let (bytes, prefixes) = durable_log_for(&ups);
            let mut mangled = bytes;
            let i = (mangled.len() - 1) * pos / 1000;
            mangled[i] ^= 1 << bit;
            let r = recover_bytes(&mangled);
            prop_assert!((r.seq as usize) < prefixes.len());
            prop_assert_eq!(
                edge_list(&r.graph),
                edge_list(&prefixes[r.seq as usize])
            );
        }

        /// Frame encode/decode is the identity on arbitrary records.
        #[test]
        fn frames_round_trip(
            seq in 1u64..u64::MAX / 2,
            ins in vec((0u32..1000, 0u32..1000), 0..20),
            del in vec((0u32..1000, 0u32..1000), 0..20),
        ) {
            let rec = WalRecord::Batch { seq, inserts: ins, deletes: del };
            let frame = encode_record_frame(&rec);
            let scan = scan_segment(&frame);
            prop_assert!(!scan.is_torn());
            prop_assert_eq!(scan.records.len(), 1);
            prop_assert_eq!(&scan.records[0].0, &rec);
        }
    }
}
