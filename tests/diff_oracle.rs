//! Differential tests for `diff_graphs` against a naive oracle.
//!
//! The oracle rebuilds both versions' full directed edge lists and
//! vertex lists and compares them as plain sorted sets — no structural
//! sharing, no tree walks, nothing shared with the implementation
//! under test. The property suite drives randomized update histories
//! (edge inserts/deletes, vertex inserts/deletes, duplicates, no-ops)
//! through every edge-set representation and checks the pointer-pruned
//! diff agrees with the oracle on every consecutive version pair.
//!
//! The deterministic tests pin the structural-sharing fast paths:
//! self-diffs and unchanged updates must come back empty *without
//! comparing vertices*, and subtrees shared between versions must
//! contribute zero added/removed edges.

use aspen_repro::aspen::{
    diff_graphs, diff_graphs_with_stats, CompressedEdges, EdgeSet, GammaEdges, Graph, GraphDiff,
    IntervalEdges, PlainEdges, UncompressedEdges, VertexId,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Exhaustive diff by full enumeration: the trusted oracle.
fn oracle_diff<E: EdgeSet>(before: &Graph<E>, after: &Graph<E>) -> GraphDiff {
    let edge_list = |g: &Graph<E>| -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for u in g.vertex_ids() {
            let ent = g.find_vertex(u).expect("listed id");
            ent.edges.for_each(&mut |v| out.push((u, v)));
        }
        out
    };
    let b_edges: std::collections::HashSet<_> = edge_list(before).into_iter().collect();
    let a_edges: std::collections::HashSet<_> = edge_list(after).into_iter().collect();
    let b_verts: std::collections::HashSet<_> = before.vertex_ids().into_iter().collect();
    let a_verts: std::collections::HashSet<_> = after.vertex_ids().into_iter().collect();

    let mut d = GraphDiff {
        added_edges: a_edges.difference(&b_edges).copied().collect(),
        removed_edges: b_edges.difference(&a_edges).copied().collect(),
        added_vertices: a_verts.difference(&b_verts).copied().collect(),
        removed_vertices: b_verts.difference(&a_verts).copied().collect(),
    };
    d.added_edges.sort_unstable();
    d.removed_edges.sort_unstable();
    d.added_vertices.sort_unstable();
    d.removed_vertices.sort_unstable();
    d
}

/// One step of a random update history.
#[derive(Clone, Debug)]
enum Op {
    InsertEdges(Vec<(VertexId, VertexId)>),
    DeleteEdges(Vec<(VertexId, VertexId)>),
    InsertVertices(Vec<VertexId>),
    DeleteVertices(Vec<VertexId>),
}

fn apply<E: EdgeSet>(g: &Graph<E>, op: &Op) -> Graph<E> {
    match op {
        Op::InsertEdges(es) => g.insert_edges(es),
        Op::DeleteEdges(es) => g.delete_edges(es),
        Op::InsertVertices(vs) => g.insert_vertices(vs),
        Op::DeleteVertices(vs) => g.delete_vertices(vs),
    }
}

/// Checks implementation == oracle across a whole update history, for
/// one edge-set representation.
fn check_history<E: EdgeSet>(initial: &[(VertexId, VertexId)], ops: &[Op], cfg: E::Config) {
    let mut versions = vec![Graph::<E>::from_edges(initial, cfg)];
    for op in ops {
        let next = apply(versions.last().expect("nonempty"), op);
        versions.push(next);
    }
    // Consecutive pairs (the streaming use case) plus first-vs-last
    // (a multi-batch jump with far less sharing).
    for w in versions.windows(2) {
        assert_eq!(diff_graphs(&w[0], &w[1]), oracle_diff(&w[0], &w[1]));
    }
    let (first, last) = (versions.first().expect("x"), versions.last().expect("x"));
    assert_eq!(diff_graphs(first, last), oracle_diff(first, last));
}

/// Replays a diff onto `before` and checks it reproduces `after`.
///
/// Only sound for undirected (symmetrized) histories: with asymmetric
/// edges, `delete_vertices` can leave dangling edges whose endpoints a
/// replaying `insert_edges` would re-materialize as vertices.
fn check_replay<E: EdgeSet>(before: &Graph<E>, after: &Graph<E>) {
    let d = diff_graphs(before, after);
    let replayed = before
        .insert_vertices(&d.added_vertices)
        .insert_edges(&d.added_edges)
        .delete_edges(&d.removed_edges)
        .delete_vertices(&d.removed_vertices);
    assert!(diff_graphs(&replayed, after).is_empty(), "replay mismatch");
}

fn edge_strategy() -> impl Strategy<Value = (VertexId, VertexId)> {
    (0u32..48, 0u32..48)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        vec(edge_strategy(), 0..24).prop_map(Op::InsertEdges),
        vec(edge_strategy(), 0..24).prop_map(Op::DeleteEdges),
        vec(0u32..64, 0..6).prop_map(Op::InsertVertices),
        vec(0u32..48, 0..4).prop_map(Op::DeleteVertices),
    ]
}

fn sym(edges: Vec<(VertexId, VertexId)>) -> Vec<(VertexId, VertexId)> {
    edges
        .into_iter()
        .flat_map(|(u, v)| [(u, v), (v, u)])
        .collect()
}

/// Like [`op_strategy`], but every edge batch is symmetrized — the
/// invariant the streaming writer maintains.
fn sym_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        vec(edge_strategy(), 0..24).prop_map(|es| Op::InsertEdges(sym(es))),
        vec(edge_strategy(), 0..24).prop_map(|es| Op::DeleteEdges(sym(es))),
        vec(0u32..64, 0..6).prop_map(Op::InsertVertices),
        vec(0u32..48, 0..4).prop_map(Op::DeleteVertices),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matches_oracle_uncompressed(
        initial in vec(edge_strategy(), 0..64),
        ops in vec(op_strategy(), 1..6),
    ) {
        check_history::<UncompressedEdges>(&initial, &ops, ());
    }

    #[test]
    fn matches_oracle_plain_ctree(
        initial in vec(edge_strategy(), 0..64),
        ops in vec(op_strategy(), 1..6),
    ) {
        // Small chunks so histories cross chunk boundaries often.
        check_history::<PlainEdges>(&initial, &ops, aspen_repro::aspen::ChunkParams::with_b(4));
    }

    #[test]
    fn matches_oracle_default_codec(
        initial in vec(edge_strategy(), 0..64),
        ops in vec(op_strategy(), 1..6),
    ) {
        check_history::<CompressedEdges>(&initial, &ops, Default::default());
    }

    #[test]
    fn matches_oracle_gamma(
        initial in vec(edge_strategy(), 0..64),
        ops in vec(op_strategy(), 1..6),
    ) {
        check_history::<GammaEdges>(&initial, &ops, Default::default());
    }

    #[test]
    fn matches_oracle_interval(
        initial in vec(edge_strategy(), 0..64),
        ops in vec(op_strategy(), 1..6),
    ) {
        check_history::<IntervalEdges>(&initial, &ops, Default::default());
    }

    #[test]
    fn symmetric_history_replays(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(sym_op_strategy(), 1..6),
    ) {
        let mut versions =
            vec![Graph::<CompressedEdges>::from_edges(&sym(initial), Default::default())];
        for op in &ops {
            let next = apply(versions.last().expect("nonempty"), op);
            versions.push(next);
        }
        for w in versions.windows(2) {
            check_replay(&w[0], &w[1]);
        }
        check_replay(
            versions.first().expect("x"),
            versions.last().expect("x"),
        );
    }

    #[test]
    fn self_diff_is_empty_and_free(initial in vec(edge_strategy(), 0..64)) {
        let g = Graph::<CompressedEdges>::from_edges(&initial, Default::default());
        let (d, stats) = diff_graphs_with_stats(&g, &g.clone());
        prop_assert!(d.is_empty());
        prop_assert_eq!(stats.vertices_compared, 0);
        prop_assert_eq!(stats.shared_edge_sets_skipped, 0);
    }
}

/// Satellite pin: an update that changes nothing diffs empty *and*
/// cheap — untouched subtrees are pruned by pointer, not re-compared.
#[test]
fn unchanged_update_diff_is_empty_and_cheap() {
    let path: Vec<(u32, u32)> = (0..511u32).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
    let g = Graph::<CompressedEdges>::from_edges(&path, Default::default());
    // Re-insert edges that already exist: a no-op update, but it still
    // rebuilds tree nodes along two root-to-leaf paths.
    let g2 = g.insert_edges(&[(5, 6), (6, 5)]);
    let (d, stats) = diff_graphs_with_stats(&g, &g2);
    assert!(d.is_empty());
    let n = g.num_vertices() as u64;
    assert!(
        stats.vertices_compared + stats.shared_edge_sets_skipped < n / 8,
        "no-op update visited {} + {} of {} vertices",
        stats.vertices_compared,
        stats.shared_edge_sets_skipped,
        n
    );
    assert!(stats.shared_subtrees_skipped > 0, "no subtrees pruned");
}

/// Satellite pin: subtrees shared between versions contribute no
/// added/removed edges, and the diff only reports the touched region.
#[test]
fn shared_subtrees_contribute_nothing() {
    let ring: Vec<(u32, u32)> = (0..1024u32)
        .flat_map(|i| {
            let j = (i + 1) % 1024;
            [(i, j), (j, i)]
        })
        .collect();
    let g = Graph::<CompressedEdges>::from_edges(&ring, Default::default());
    let g2 = g
        .insert_edges(&[(10, 500), (500, 10)])
        .delete_edges(&[(7, 8), (8, 7)]);
    let (d, stats) = diff_graphs_with_stats(&g, &g2);
    assert_eq!(d.added_edges, vec![(10, 500), (500, 10)]);
    assert_eq!(d.removed_edges, vec![(7, 8), (8, 7)]);
    assert!(d.added_vertices.is_empty() && d.removed_vertices.is_empty());
    // Work scales with the touched region, not the graph.
    let n = g.num_vertices() as u64;
    assert!(
        stats.vertices_compared < n / 8,
        "compared {} of {} vertices",
        stats.vertices_compared,
        n
    );
    assert!(stats.shared_subtrees_skipped > 0);
}

/// The fast path never misreports: two graphs built independently with
/// the same content (no sharing at all) still diff empty.
#[test]
fn equal_but_unshared_versions_diff_empty() {
    let edges: Vec<(u32, u32)> = (0..100u32).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
    let a = Graph::<CompressedEdges>::from_edges(&edges, Default::default());
    let b = Graph::<CompressedEdges>::from_edges(&edges, Default::default());
    let (d, stats) = diff_graphs_with_stats(&a, &b);
    assert!(d.is_empty());
    // Nothing is shared, so everything really was compared.
    assert_eq!(stats.shared_subtrees_skipped, 0);
    assert_eq!(stats.vertices_compared, a.num_vertices() as u64);
}
