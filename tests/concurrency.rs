//! Concurrency and serializability stress tests for the versioned
//! graph (§6): many readers and one writer, with invariants checked on
//! every snapshot — the properties ("no reader or writer is ever
//! blocked", strict serializability of batches) the paper claims.

use aspen::{ChunkParams, CompressedEdges, FlatSnapshot, Graph, GraphView, VersionedGraph};
use graphgen::Rmat;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn starting_graph() -> Graph<CompressedEdges> {
    let edges = Rmat::new(9, 0xCC).symmetric_graph_edges(6_000);
    Graph::from_edges(&edges, ChunkParams::with_b(32))
}

#[test]
fn readers_never_observe_torn_batches() {
    let vg = Arc::new(VersionedGraph::new(starting_graph()));
    let stop = Arc::new(AtomicBool::new(false));
    let batches_done = Arc::new(AtomicU64::new(0));

    // Writer: each batch inserts a 10-edge star atomically, then
    // deletes it atomically. Every consistent version therefore
    // contains either all 20 directed edges of the star or none.
    let writer = {
        let (vg, stop, done) = (vg.clone(), stop.clone(), batches_done.clone());
        std::thread::spawn(move || {
            let mut round = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let center = 600 + round % 64;
                let star: Vec<(u32, u32)> = (0..10u32).map(|i| (center, 700 + i)).collect();
                vg.insert_edges_undirected(&star);
                vg.delete_edges_undirected(&star);
                done.fetch_add(1, Ordering::Relaxed);
                round += 1;
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (vg, stop) = (vg.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = vg.acquire();
                    // Star edges come and go as a unit: center degree
                    // is 0 or 10 extra, never in between for *this*
                    // version (the center ids rotate, so just check
                    // symmetric consistency and counts).
                    assert_eq!(v.num_edges() % 2, 0, "odd edge count: torn batch");
                    for c in 600..664u32 {
                        let d = v.degree(c);
                        assert!(d == 0 || d == 10, "partial star visible: deg={d}");
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    for r in readers {
        assert!(r.join().expect("reader") > 0);
    }
    assert!(batches_done.load(Ordering::Relaxed) > 0);
}

#[test]
fn snapshots_pin_their_version_forever() {
    let vg = VersionedGraph::new(starting_graph());
    let v0 = vg.acquire();
    let (e0, n0) = (v0.num_edges(), v0.num_vertices());
    let digest0: u64 = GraphView::neighbors(&*v0, 0)
        .iter()
        .map(|&x| u64::from(x))
        .sum();

    for i in 0..50u32 {
        vg.insert_edges_undirected(&[(i % 40, 1000 + i)]);
    }
    // old snapshot is bit-stable
    assert_eq!(v0.num_edges(), e0);
    assert_eq!(v0.num_vertices(), n0);
    let digest_after: u64 = GraphView::neighbors(&*v0, 0)
        .iter()
        .map(|&x| u64::from(x))
        .sum();
    assert_eq!(digest0, digest_after);
    v0.check_invariants();
}

#[test]
fn flat_snapshots_are_consistent_under_concurrent_updates() {
    let vg = Arc::new(VersionedGraph::new(starting_graph()));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (vg, stop) = (vg.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                vg.insert_edges_undirected(&[(i % 100, 200 + i % 100)]);
                i += 1;
            }
        })
    };
    for _ in 0..20 {
        let snap = vg.acquire();
        let flat = FlatSnapshot::new(&snap);
        // The flat snapshot must agree with the tree version it was
        // built from, even while the writer races ahead.
        let mut total = 0u64;
        for v in 0..flat.len() as u32 {
            total += flat.degree(v) as u64;
        }
        assert_eq!(total, snap.num_edges(), "flat snapshot torn");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
}

#[test]
fn many_retained_versions_stay_independent() {
    let vg = VersionedGraph::new(starting_graph());
    let mut versions = vec![vg.acquire()];
    let mut expected = vec![versions[0].num_edges()];
    for i in 0..30u32 {
        vg.insert_edges_undirected(&[(i, 3000 + i)]);
        versions.push(vg.acquire());
        expected.push(versions.last().expect("pushed").num_edges());
    }
    // All 31 versions remain queryable with their historical counts.
    for (v, e) in versions.iter().zip(&expected) {
        assert_eq!(v.num_edges(), *e);
        v.check_invariants();
    }
    // Edge counts strictly increase (each batch adds a fresh edge).
    for w in expected.windows(2) {
        assert_eq!(w[1], w[0] + 2);
    }
}
