//! Differential oracle suite for the incremental repair algorithms.
//!
//! Randomized batched update histories — symmetrized edge batches (the
//! invariant the streaming writer maintains), vertex-removing deletes,
//! duplicate updates, empty batches — are replayed as version chains.
//! After **every** batch, `DeltaCc`/`DeltaBfs` repair driven by the
//! `diff_graphs` delta must equal the from-scratch recomputation on
//! the new version. Every edge-set representation is covered, and one
//! property re-runs histories across 1/2/4/8-worker pools, since the
//! from-scratch side (`connected_components`, `bfs`) is parallel.

use aspen_repro::algorithms::{self, connected_components, DeltaBfs, DeltaCc};
use aspen_repro::aspen::{
    diff_graphs, ChunkParams, CompressedEdges, EdgeSet, GammaEdges, Graph, GraphView,
    IntervalEdges, PlainEdges, UncompressedEdges, VertexId,
};
use aspen_repro::parlib;
use proptest::collection::vec;
use proptest::prelude::*;

/// One batch of a random update history.
#[derive(Clone, Debug)]
enum Op {
    InsertEdges(Vec<(VertexId, VertexId)>),
    DeleteEdges(Vec<(VertexId, VertexId)>),
    InsertVertices(Vec<VertexId>),
    DeleteVertices(Vec<VertexId>),
}

fn apply<E: EdgeSet>(g: &Graph<E>, op: &Op) -> Graph<E> {
    match op {
        Op::InsertEdges(es) => g.insert_edges(es),
        Op::DeleteEdges(es) => g.delete_edges(es),
        Op::InsertVertices(vs) => g.insert_vertices(vs),
        Op::DeleteVertices(vs) => g.delete_vertices(vs),
    }
}

fn sym(edges: Vec<(VertexId, VertexId)>) -> Vec<(VertexId, VertexId)> {
    edges
        .into_iter()
        .flat_map(|(u, v)| [(u, v), (v, u)])
        .collect()
}

/// The from-scratch BFS answer with `DeltaBfs`'s out-of-space
/// convention (a source beyond the id space reaches nothing).
fn bfs_oracle<E: EdgeSet>(g: &Graph<E>, src: u32) -> Vec<u32> {
    if (src as usize) >= g.id_bound() {
        return vec![u32::MAX; g.id_bound()];
    }
    algorithms::bfs(g, src).dist
}

/// Replays `ops` as a version chain and checks both repair algorithms
/// against from-scratch recomputation **after every batch**.
fn check_incremental<E: EdgeSet>(
    initial: &[(VertexId, VertexId)],
    ops: &[Op],
    cfg: E::Config,
    src: u32,
) {
    let mut cur = Graph::<E>::from_edges(&sym(initial.to_vec()), cfg);
    let mut cc = DeltaCc::new(&cur);
    let mut bfs = DeltaBfs::new(&cur, src);
    assert_eq!(cc.labels(), connected_components(&cur).as_slice());
    assert_eq!(bfs.dist(), bfs_oracle(&cur, src).as_slice());
    for (i, op) in ops.iter().enumerate() {
        let next = apply(&cur, op);
        let diff = diff_graphs(&cur, &next);
        cc.apply_diff(&diff, &next);
        bfs.apply_diff(&diff, &next);
        assert_eq!(
            cc.labels(),
            connected_components(&next).as_slice(),
            "CC diverged after batch {i}: {op:?}"
        );
        assert_eq!(
            bfs.dist(),
            bfs_oracle(&next, src).as_slice(),
            "BFS diverged after batch {i}: {op:?}"
        );
        cur = next;
    }
}

fn edge_strategy() -> impl Strategy<Value = (VertexId, VertexId)> {
    // A small id range makes duplicate edges and repeated touches of
    // the same vertex common.
    (0u32..40, 0u32..40)
}

/// Symmetrized batches, length 0 included (empty batches must be
/// no-ops through the whole diff/repair path).
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        vec(edge_strategy(), 0..20).prop_map(|es| Op::InsertEdges(sym(es))),
        vec(edge_strategy(), 0..20).prop_map(|es| Op::DeleteEdges(sym(es))),
        vec(0u32..56, 0..5).prop_map(Op::InsertVertices),
        vec(0u32..40, 0..4).prop_map(Op::DeleteVertices),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn repair_matches_recompute_uncompressed(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..8),
        src in 0u32..56,
    ) {
        check_incremental::<UncompressedEdges>(&initial, &ops, (), src);
    }

    #[test]
    fn repair_matches_recompute_plain_ctree(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..8),
        src in 0u32..56,
    ) {
        // Tiny chunks so batches cross chunk boundaries constantly.
        check_incremental::<PlainEdges>(&initial, &ops, ChunkParams::with_b(4), src);
    }

    #[test]
    fn repair_matches_recompute_default_codec(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..8),
        src in 0u32..56,
    ) {
        check_incremental::<CompressedEdges>(&initial, &ops, Default::default(), src);
    }

    #[test]
    fn repair_matches_recompute_gamma(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..8),
        src in 0u32..56,
    ) {
        check_incremental::<GammaEdges>(&initial, &ops, Default::default(), src);
    }

    #[test]
    fn repair_matches_recompute_interval(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..8),
        src in 0u32..56,
    ) {
        check_incremental::<IntervalEdges>(&initial, &ops, Default::default(), src);
    }

    #[test]
    fn repair_matches_recompute_across_worker_pools(
        initial in vec(edge_strategy(), 0..48),
        ops in vec(op_strategy(), 1..6),
        src in 0u32..56,
    ) {
        // The from-scratch side is parallel; the repaired answer must
        // be identical no matter how wide the pool is.
        for threads in [1usize, 2, 4, 8] {
            parlib::with_threads(threads, || {
                check_incremental::<CompressedEdges>(&initial, &ops, Default::default(), src);
            });
        }
    }
}

/// Empty and duplicate-only batches leave both analytics untouched.
#[test]
fn empty_and_noop_batches_change_nothing() {
    let ring: Vec<(u32, u32)> = (0..32u32).map(|i| (i, (i + 1) % 32)).collect();
    let g = Graph::<CompressedEdges>::from_edges(&sym(ring), Default::default());
    let mut cc = DeltaCc::new(&g);
    let mut bfs = DeltaBfs::new(&g, 0);
    let labels_before = cc.labels().to_vec();
    let dist_before = bfs.dist().to_vec();
    for op in [
        Op::InsertEdges(vec![]),
        Op::DeleteEdges(vec![]),
        // Re-inserting present edges and deleting absent ones are
        // no-ops at the version level: the diff comes back empty.
        Op::InsertEdges(sym(vec![(3, 4), (3, 4), (10, 11)])),
        Op::DeleteEdges(sym(vec![(100, 200)])),
    ] {
        let next = apply(&g, &op);
        let diff = diff_graphs(&g, &next);
        assert!(diff.is_empty(), "unexpected diff for {op:?}");
        let s_cc = cc.apply_diff(&diff, &next);
        let s_bfs = bfs.apply_diff(&diff, &next);
        assert!(!s_cc.full_recompute && !s_bfs.full_recompute);
        assert_eq!(cc.labels(), labels_before.as_slice());
        assert_eq!(bfs.dist(), dist_before.as_slice());
    }
}

/// A vertex-removing delete that takes out a BFS-tree interior vertex
/// and splits a component, in one batch with inserts.
#[test]
fn vertex_removal_splits_and_reroutes() {
    // 0-1-2-3-4-5 path plus a pocket {8,9} hanging off 2.
    let edges = sym(vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 8), (8, 9)]);
    let g = Graph::<CompressedEdges>::from_edges(&edges, Default::default());
    let mut cc = DeltaCc::new(&g);
    let mut bfs = DeltaBfs::new(&g, 0);
    // Remove vertex 2 (BFS-tree interior, articulation point) and at
    // the same time bridge 1-3 so the main path survives without it.
    let next = g.delete_vertices(&[2]).insert_edges(&sym(vec![(1, 3)]));
    let diff = diff_graphs(&g, &next);
    assert!(diff.removed_vertices.contains(&2));
    cc.apply_diff(&diff, &next);
    bfs.apply_diff(&diff, &next);
    assert_eq!(cc.labels(), connected_components(&next).as_slice());
    assert_eq!(bfs.dist(), bfs_oracle(&next, 0).as_slice());
    // The pocket is now its own component, unreachable from 0.
    assert_eq!(cc.labels()[8], cc.labels()[9]);
    assert_ne!(cc.labels()[0], cc.labels()[8]);
    assert_eq!(bfs.dist()[9], u32::MAX);
    assert_eq!(bfs.dist()[5], 4); // 0-1-3-4-5 after the bridge
}
